"""Streaming quantile estimation for the observability layer.

The fleet engine's end-of-run report computes exact percentiles from
the full latency list; the metrics *time series* cannot afford that --
at the ROADMAP's million-user scale a per-window sample list is the
exact memory blow-up the streaming-ingestion work removed.  This
module provides the P² (piecewise-parabolic) estimator of Jain &
Chlamtac (CACM 1985): five markers per tracked quantile, O(1) memory
and O(1) update, no stored samples.

Accuracy is statistical, not exact -- the property tests pin the
estimates to a rank band around ``numpy.percentile`` rather than to
equality.  Exact run-level percentiles still come from the engine's
:class:`~repro.fleet.report.FleetResult`.
"""

from __future__ import annotations

from bisect import insort

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, 1985).

    Five markers track the running min, max, the target quantile ``p``
    and the two intermediate quantiles ``p/2`` and ``(1+p)/2``; marker
    heights move by a piecewise-parabolic (falling back to linear)
    interpolation as observations arrive.  The first five observations
    are buffered and sorted; until then :meth:`value` interpolates the
    sorted buffer directly, so small windows still report something
    sensible.
    """

    __slots__ = ("p", "_count", "_buf", "_q", "_n", "_desired", "_inc")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p!r}")
        self.p = p
        self._count = 0
        self._buf: list[float] = []  # startup buffer, sorted
        self._q: list[float] | None = None  # marker heights once primed
        self._n: list[float] = []  # marker positions (1-based)
        self._desired: list[float] = []
        self._inc = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self._count += 1
        q = self._q
        if q is None:
            insort(self._buf, x)
            if len(self._buf) == 5:
                p = self.p
                self._q = self._buf
                self._buf = []
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0,
                ]
            return

        n = self._n
        # Locate the marker cell (extending the extremes if needed).
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        desired = self._desired
        inc = self._inc
        for i in range(1, 5):
            desired[i] += inc[i]

        # Nudge the three interior markers toward their desired ranks.
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d > 0.0 else -1.0
                cand = self._parabolic(i, step)
                if not q[i - 1] < cand < q[i + 1]:
                    cand = self._linear(i, step)
                q[i] = cand
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (``nan`` before the first observation).

        Below five observations the sorted startup buffer is
        interpolated directly (linear, matching ``numpy.percentile``'s
        default); afterwards the middle marker's height is the
        estimate.
        """
        if self._q is not None:
            return self._q[2]
        buf = self._buf
        if not buf:
            return float("nan")
        if len(buf) == 1:
            return buf[0]
        rank = self.p * (len(buf) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(buf) - 1)
        frac = rank - lo
        return buf[lo] + (buf[hi] - buf[lo]) * frac


class QuantileSketch:
    """A bundle of P² estimators plus count/min/max/mean accounting.

    One sketch summarizes one stream of observations (e.g. one model's
    completion latencies within one metrics window) in O(1) memory.
    """

    __slots__ = ("quantiles", "_estimators", "count", "_sum", "min", "max")

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> None:
        self.quantiles = tuple(quantiles)
        self._estimators = {p: P2Quantile(p) for p in self.quantiles}
        self.count = 0
        self._sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> None:
        self.count += 1
        self._sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._estimators.values():
            est.add(x)

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        """Estimate for one of the tracked quantiles."""
        return self._estimators[p].value()
