"""Per-query span records and trace exporters.

Spans are built *after* the run from the fault loop's
:class:`~repro.fleet.faults.TrackedQuery` log -- the hot loop records
nothing beyond what the retry/hedge machinery already keeps, so traced
runs cost the tracked loop, not a second bookkeeping layer.

One span per arrival: the query's terminal outcome (completed, failed,
dropped -- exactly one, the conservation invariant), its attempts as
child records (retries and hedges classified from dispatch-time
overlap), and fault annotations (crash-killed attempts, attempts that
ran during a straggler episode of their replica).  Two export shapes:

- tagged JSONL (``type`` = ``meta`` / ``span`` / ``control``), the
  machine-diffable form ``repro.cli observe`` reads;
- Chrome trace-event JSON (``traceEvents``), loadable in Perfetto or
  ``chrome://tracing``: queries as async ``b``/``e`` pairs on the
  "queries" process, attempts as ``X`` slices on the "replicas"
  process (one track per replica), faults and autoscaler decisions as
  instants.
"""

from __future__ import annotations

import json

__all__ = [
    "build_spans",
    "chrome_trace",
    "write_trace_jsonl",
    "read_trace_jsonl",
]

_OUTCOMES = {0: "inflight", 1: "completed", 2: "failed", 3: "dropped"}
_ATTEMPT_STATUS = {0: "inflight", 1: "completed", 2: "killed"}


def _slow_intervals(fault_events, horizon: float) -> dict[int, list[tuple]]:
    """Per-server straggler episodes replayed from the applied events.

    The fault loop's ``applied`` list only contains events that took
    effect (overlap-superseded restores never appear), so a linear
    replay reconstructs the true ``slow_factor`` timeline.
    """
    open_ep: dict[int, tuple[float, float]] = {}
    out: dict[int, list[tuple]] = {}
    for ev in fault_events:
        idx = ev.server_index
        if ev.kind == "slow":
            prior = open_ep.pop(idx, None)
            if prior is not None:  # overlapping episode: newest factor wins
                out.setdefault(idx, []).append((prior[0], ev.time_s, prior[1]))
            open_ep[idx] = (ev.time_s, ev.factor)
        elif ev.kind == "restore":
            prior = open_ep.pop(idx, None)
            if prior is not None:
                out.setdefault(idx, []).append((prior[0], ev.time_s, prior[1]))
    for idx, (t0, factor) in open_ep.items():
        out.setdefault(idx, []).append((t0, horizon, factor))
    return out


def build_spans(log, fault_events, warmup_s: float, horizon: float) -> list[dict]:
    """Materialize span dicts from a run's ``last_query_log``.

    ``measured`` mirrors the engine's accounting window exactly
    (arrival after warmup, resolution by the horizon; drops are
    measured on arrival alone), so summing measured spans by outcome
    reproduces the run's :class:`~repro.fleet.report.FleetResult`
    counts -- the round-trip ``repro.cli observe`` verifies.
    """
    slow = _slow_intervals(fault_events, horizon)
    spans: list[dict] = []
    for qid, tq in enumerate(log):
        outcome = _OUTCOMES.get(tq.outcome, "inflight")
        arrival = tq.query.arrival_s
        attempts = []
        for k, att in enumerate(tq.attempts):
            server, start, end, status = att
            if k == 0:
                kind = "initial"
            else:
                # A hedge dispatches while an earlier attempt is still
                # running (its end is later, or never came); a retry
                # dispatches exactly when the last attempt was killed.
                prior = tq.attempts[:k]
                overlap = any(a[2] is None or a[2] > start for a in prior)
                kind = "hedge" if overlap else "retry"
            annotations = []
            if status == 2:
                annotations.append("killed_by_crash")
            for t0, t1, factor in slow.get(server.index, ()):
                if start < t1 and (end is None or end > t0):
                    annotations.append(f"straggler_x{factor:g}")
                    break
            attempts.append(
                {
                    "server": server.index,
                    "server_type": server.server_type.name,
                    "start_s": start,
                    "end_s": end,
                    "status": _ATTEMPT_STATUS.get(status, "inflight"),
                    "kind": kind,
                    "annotations": annotations,
                }
            )
        if outcome == "completed":
            finish = tq.finish_s
        elif outcome == "dropped":
            finish = arrival
        elif outcome == "failed":
            # Killed attempts carry their kill timestamp; the query
            # failed when its last outstanding attempt died.
            ends = [a[2] for a in tq.attempts if a[2] is not None]
            finish = max(ends) if ends else arrival
        else:
            finish = None
        if outcome == "dropped":
            measured = arrival >= warmup_s
        elif finish is None:
            measured = False
        else:
            measured = arrival >= warmup_s and finish <= horizon
        spans.append(
            {
                "qid": qid,
                "model": tq.model,
                "outcome": outcome,
                "arrival_s": arrival,
                "finish_s": finish,
                "latency_ms": (finish - arrival) * 1e3 if finish is not None else None,
                "measured": measured,
                "retries": tq.retries,
                "hedged": tq.hedge_state == 2,
                "attempts": attempts,
            }
        )
    return spans


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

#: Chrome trace-event process ids.
_PID_CONTROL = 0
_PID_QUERIES = 1
_PID_REPLICAS = 2


def chrome_trace(
    spans, control_events, warmup_s: float, horizon: float
) -> dict:
    """Render spans + control timeline as a Chrome trace-event document.

    Timestamps are simulated seconds scaled to microseconds (the
    format's unit).  Every query becomes one balanced async ``b``/``e``
    pair keyed by its qid (zero-duration for drops), every attempt an
    ``X`` complete slice on its replica's track, every fault and
    autoscaler decision an instant.
    """
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID_CONTROL, "tid": 0,
         "args": {"name": "control-plane"}},
        {"ph": "M", "name": "process_name", "pid": _PID_QUERIES, "tid": 0,
         "args": {"name": "queries"}},
        {"ph": "M", "name": "process_name", "pid": _PID_REPLICAS, "tid": 0,
         "args": {"name": "replicas"}},
    ]
    model_tid = {
        m: i for i, m in enumerate(sorted({s["model"] for s in spans}))
    }
    for span in spans:
        qid = f"q{span['qid']}"
        tid = model_tid[span["model"]]
        finish = span["finish_s"] if span["finish_s"] is not None else horizon
        events.append(
            {
                "ph": "b",
                "cat": "query",
                "id": qid,
                "name": span["model"],
                "pid": _PID_QUERIES,
                "tid": tid,
                "ts": span["arrival_s"] * 1e6,
                "args": {
                    "outcome": span["outcome"],
                    "measured": span["measured"],
                    "retries": span["retries"],
                    "hedged": span["hedged"],
                    # Exact arrival (ts is scaled); observe recomputes
                    # the warmup-measured counters from it.
                    "arrival_s": span["arrival_s"],
                },
            }
        )
        events.append(
            {
                "ph": "e",
                "cat": "query",
                "id": qid,
                "name": span["model"],
                "pid": _PID_QUERIES,
                "tid": tid,
                "ts": finish * 1e6,
            }
        )
        for att in span["attempts"]:
            end = att["end_s"] if att["end_s"] is not None else horizon
            events.append(
                {
                    "ph": "X",
                    "cat": "attempt",
                    "name": f"{span['model']}/{att['kind']}",
                    "pid": _PID_REPLICAS,
                    "tid": att["server"],
                    "ts": att["start_s"] * 1e6,
                    "dur": max(end - att["start_s"], 0.0) * 1e6,
                    "args": {
                        "qid": span["qid"],
                        "status": att["status"],
                        "annotations": att["annotations"],
                    },
                }
            )
    for ev in control_events:
        if ev["kind"] == "fault":
            events.append(
                {
                    "ph": "i",
                    "cat": "fault",
                    "name": ev["fault"],
                    "pid": _PID_REPLICAS,
                    "tid": ev["server"],
                    "ts": ev["t"] * 1e6,
                    "s": "t",
                    "args": {"factor": ev["factor"]},
                }
            )
        elif ev["kind"] == "autoscaler_tick":
            for dec in ev.get("decisions", ()):
                events.append(
                    {
                        "ph": "i",
                        "cat": "autoscaler",
                        "name": dec["action"],
                        "pid": _PID_CONTROL,
                        "tid": 0,
                        "ts": ev["t"] * 1e6,
                        "s": "p",
                        "args": {
                            "model": dec["model"],
                            "server": dec["server"],
                            "reason": dec["reason"],
                        },
                    }
                )
        elif ev["kind"] == "phase":
            events.append(
                {
                    "ph": "i",
                    "cat": "phase",
                    "name": "phase",
                    "pid": _PID_CONTROL,
                    "tid": 0,
                    "ts": ev["t"] * 1e6,
                    "s": "p",
                    "args": {
                        "end_s": ev["end_s"],
                        "completed": ev["completed"],
                        "p99_ms": _finite(ev["p99_ms"]),
                    },
                }
            )
    return {
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {"warmup_s": warmup_s, "horizon_s": horizon},
    }


def _finite(x: float):
    """Infinities are not valid strict JSON; stringify them for args."""
    if x == float("inf") or x == float("-inf") or x != x:
        return str(x)
    return x


def write_trace_jsonl(
    path: str, spans, control_events, warmup_s: float, horizon: float
) -> None:
    """Write the tagged-JSONL trace: one meta line, spans, control."""
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "warmup_s": warmup_s,
                    "horizon_s": horizon,
                    "spans": len(spans),
                    "control_events": len(control_events),
                }
            )
            + "\n"
        )
        for span in spans:
            fh.write(json.dumps({"type": "span", **span}) + "\n")
        for ev in control_events:
            fh.write(json.dumps({"type": "control", **ev}) + "\n")


def read_trace_jsonl(path: str) -> tuple[dict, list[dict], list[dict]]:
    """Read a tagged-JSONL trace back: ``(meta, spans, control)``."""
    meta: dict = {}
    spans: list[dict] = []
    control: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "meta":
                meta = obj
            elif kind == "span":
                spans.append(obj)
            elif kind == "control":
                control.append(obj)
            else:
                raise ValueError(f"unknown trace line type {kind!r} in {path}")
    return meta, spans, control
