"""The fleet observer: windowed streaming metrics plus trace capture.

A :class:`FleetProbe` is handed to :class:`~repro.fleet.engine.
FleetSimulator` as ``observer=``.  The engine's hot loops guard every
hook behind a single pre-bound boolean, so a run without an observer
performs literally zero observability work and stays float-identical
to the pre-observability engine (``tests/test_perf_equivalence.py``
pins this).

With ``metrics=True`` the probe samples the run into a time series on
a configurable window: per model and window it records arrival/
completion/drop/failure counts, qps, streaming p50/p95/p99 (P² sketch,
:mod:`repro.obs.sketch` -- no stored sample lists), and the SLA
violation rate, alongside fleet-wide queue depth, active replica
count, and windowed power.  With ``trace=True`` the engine routes the
run through the tracked fault loop and the probe materializes
per-query spans (:mod:`repro.obs.trace`) when the run finishes.

The probe never mutates simulator state and draws no randomness, so an
attached observer cannot perturb the simulated floats either -- only
skip work, never change it.
"""

from __future__ import annotations

import json

try:  # optional: vectorized window drains
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.hardware.power import ComponentUtilization
from repro.obs.sketch import QuantileSketch

__all__ = ["FleetProbe", "MetricsRegistry", "METRIC_FIELDS"]

#: Column order of one metrics row (one model within one window).
METRIC_FIELDS = (
    "t",
    "model",
    "arrivals",
    "completed",
    "dropped",
    "failed",
    "qps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "violations",
    "violation_rate",
    "queue_depth",
    "active_replicas",
    "power_w",
)


class MetricsRegistry:
    """Named monotonic counters and last-value gauges.

    The run-level aggregation companion of the windowed time series:
    cheap to update, exported in one snapshot.
    """

    __slots__ = ("counters", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    def inc(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def snapshot(self) -> dict:
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}


class _Window:
    """Accumulator for one model stream within the current window.

    Completion latencies are buffered raw (``buf``) on the hot path and
    folded into the P² sketch only when the window closes
    (:meth:`drain`): the per-event hook is one append instead of an
    ms-conversion, an SLA compare, and three marker updates.  Counters
    and the emitted rows are unchanged -- the deferred work replays the
    identical float sequence at the window boundary.
    """
    __slots__ = ("sla_ms", "arrivals", "completed", "dropped", "failed",
                 "violations", "sketch", "buf", "_quantiles")

    def __init__(self, sla_ms: float, quantiles: tuple[float, ...]) -> None:
        self.sla_ms = sla_ms
        self._quantiles = quantiles
        self.reset()

    def reset(self) -> None:
        self.arrivals = 0
        self.completed = 0
        self.dropped = 0
        self.failed = 0
        self.violations = 0
        self.sketch = QuantileSketch(self._quantiles)
        self.buf: list[float] = []

    def drain(self) -> None:
        """Fold the buffered completions into the window's statistics."""
        buf = self.buf
        if not buf:
            return
        if _np is not None:
            # Same elementwise *1e3 and > compare, done in C.
            arr = _np.asarray(buf) * 1e3
            viol = int((arr > self.sla_ms).sum())
            vals = arr.tolist()
        else:
            sla = self.sla_ms
            viol = 0
            vals = [lat * 1e3 for lat in buf]
            for ms in vals:
                if ms > sla:
                    viol += 1
        self.completed += len(buf)
        self.violations += viol
        self.sketch.add_many(vals)
        self.buf = []


class FleetProbe:
    """Opt-in observer for one :meth:`FleetSimulator.run` call.

    Args:
        window_s: Metrics sampling window (seconds of simulated time).
        metrics: Sample the windowed time series.  When False the hot
            loops skip every metrics hook (``trace``-only probes cost
            nothing per event).
        trace: Capture per-query spans.  Forces the tracked fault loop
            (per-query records); span dicts are built lazily at first
            access, so a traced run's wall time is the tracked loop
            alone -- CI pins it below 1.5x of that loop's own cost.
        quantiles: Latency quantiles tracked per window by the P²
            sketches.

    One probe observes one run: :meth:`bind` resets all state.  After
    the run, ``metrics_rows``, ``registry``, ``control_events``,
    ``spans``, and ``result`` hold the captured telemetry, and the
    ``export_*`` methods write the files ``repro.cli observe`` reads.
    """

    def __init__(
        self,
        window_s: float = 0.5,
        metrics: bool = True,
        trace: bool = False,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
    ) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be > 0")
        if not (metrics or trace):
            raise ValueError("a probe must enable metrics, tracing, or both")
        self.window_s = float(window_s)
        self.metrics = bool(metrics)
        self.trace = bool(trace)
        self.quantiles = tuple(quantiles)
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must be in (0, 1), got {q!r}")
        self.registry = MetricsRegistry()
        self.metrics_rows: list[dict] = []
        self.control_events: list[dict] = []
        self._spans: list[dict] | None = None
        self._span_inputs = None
        self.result = None
        self._sim = None
        self._win: dict[str, _Window] = {}
        self._next_t = self.window_s
        self._prev_items: dict[int, int] = {}
        self._ticks: list[dict] = []
        self.warmup_s = 0.0
        self.horizon = 0.0

    # -- lifecycle (called by the engine) ------------------------------

    def bind(self, sim) -> None:
        """Reset capture state and attach to one simulator run."""
        self._sim = sim
        self.registry = MetricsRegistry()
        self.metrics_rows = []
        self.control_events = []
        self._spans = None
        self._span_inputs = None
        self.result = None
        self._ticks = []
        self._next_t = self.window_s
        self._win = {
            m: _Window(sim.sla_ms.get(m, float("inf")), self.quantiles)
            for m in sim._routable
        }
        self._prev_items = {s.index: s.items_done for s in sim.servers}

    def finish(self, horizon: float, warmup_s: float, result, sim) -> None:
        """Close the run: flush the tail window, build spans/timeline."""
        self.warmup_s = warmup_s
        self.horizon = horizon
        self.result = result
        if self.metrics:
            self._flush_to(horizon)
            self._emit(self._next_t)  # partial tail window (drain phase)
            reg = self.registry
            totals = {"arrivals": 0, "completed": 0, "dropped": 0, "failed": 0}
            for row in self.metrics_rows:
                for key in totals:
                    totals[key] += row[key]
            for key, val in totals.items():
                reg.inc(f"queries.{key}", val)
            reg.inc("windows.sampled", len(self.metrics_rows))
            reg.set_gauge("run.horizon_s", horizon)
            reg.set_gauge("run.avg_power_w", result.avg_power_w)
            reg.set_gauge("run.availability", result.availability)
        if self.trace:
            # Span construction is deferred to first access/export: a
            # traced run's wall time is the tracked loop alone, and the
            # per-query dict building is paid only if spans are read.
            self._span_inputs = (
                sim.last_query_log, result.fault_events, warmup_s, horizon,
            )
        self.control_events = self._build_control_log(result)
        self._sim = None

    @property
    def spans(self) -> list[dict]:
        """Per-query spans, materialized lazily from the run's log."""
        if self._spans is None:
            if self._span_inputs is None:
                return []
            from repro.obs.trace import build_spans

            self._spans = build_spans(*self._span_inputs)
        return self._spans

    # -- hot-path hooks (each guarded by `probe_on` in the loops) ------

    def on_arrival(self, model: str, now: float) -> None:
        if now >= self._next_t:
            self._flush_to(now)
        win = self._win.get(model)
        if win is None:
            win = self._window_for(model)
        win.arrivals += 1

    def on_completion(self, model: str, latency_s: float, now: float) -> None:
        # Hot path: one boundary check and one list append.  The ms
        # conversion, SLA compare, and sketch fold happen when the
        # window closes (``_Window.drain``), in arrival-of-completion
        # order, so the emitted row is identical to per-event folding.
        if now >= self._next_t:
            self._flush_to(now)
        win = self._win.get(model)
        if win is None:
            win = self._window_for(model)
        win.buf.append(latency_s)

    def on_drop(self, model: str, now: float) -> None:
        if now >= self._next_t:
            self._flush_to(now)
        win = self._win.get(model)
        if win is None:
            win = self._window_for(model)
        win.dropped += 1

    def on_failure(self, model: str, now: float) -> None:
        if now >= self._next_t:
            self._flush_to(now)
        win = self._win.get(model)
        if win is None:
            win = self._window_for(model)
        win.failed += 1

    # -- cold-path hooks -----------------------------------------------

    def on_autoscaler_tick(self, now: float, decisions, autoscaler) -> None:
        """Record one control-plane decision point with its inputs."""
        record: dict = {"t": now, "kind": "autoscaler_tick"}
        forecast = getattr(autoscaler, "forecast_qps", None)
        if forecast is not None and self._sim is not None:
            record["forecast_qps"] = {
                m: forecast(m) for m in sorted(self._sim._routable)
            }
        if decisions:
            record["decisions"] = [
                {
                    "model": ev.model,
                    "action": ev.action,
                    "server": getattr(ev.server, "index", None),
                    "reason": ev.reason,
                }
                for ev in decisions
            ]
        self._ticks.append(record)

    # -- internals -----------------------------------------------------

    def _window_for(self, model: str) -> _Window:
        sla = float("inf")
        if self._sim is not None:
            sla = self._sim.sla_ms.get(model, float("inf"))
        win = _Window(sla, self.quantiles)
        self._win[model] = win
        return win

    def _flush_to(self, t: float) -> None:
        while self._next_t <= t:
            self._emit(self._next_t)
            self._next_t += self.window_s

    def _emit(self, t_end: float) -> None:
        """Append one row per model for the window ending at ``t_end``."""
        queue_depth, active, power_w = self._fleet_gauges()
        window_s = self.window_s
        for model in sorted(self._win):
            win = self._win[model]
            win.drain()
            sketch = win.sketch
            resolved = win.completed + win.dropped + win.failed
            p50 = sketch.quantile(0.5) if 0.5 in sketch.quantiles else float("nan")
            p95 = sketch.quantile(0.95) if 0.95 in sketch.quantiles else float("nan")
            p99 = sketch.quantile(0.99) if 0.99 in sketch.quantiles else float("nan")
            # Each quantile runs its own P² markers, so estimates can
            # cross by a hair on tight distributions; repair to monotone.
            if p50 == p50 and p95 == p95 and p95 < p50:
                p95 = p50
            if p95 == p95 and p99 == p99 and p99 < p95:
                p99 = p95
            self.metrics_rows.append(
                {
                    "t": t_end,
                    "model": model,
                    "arrivals": win.arrivals,
                    "completed": win.completed,
                    "dropped": win.dropped,
                    "failed": win.failed,
                    "qps": win.completed / window_s,
                    "p50_ms": p50,
                    "p95_ms": p95,
                    "p99_ms": p99,
                    "violations": win.violations,
                    "violation_rate": (
                        (win.violations + win.dropped + win.failed) / resolved
                        if resolved
                        else 0.0
                    ),
                    "queue_depth": queue_depth,
                    "active_replicas": active,
                    "power_w": power_w,
                }
            )
            win.reset()

    def _fleet_gauges(self) -> tuple[int, int, float]:
        """Snapshot queue depth, active replicas, and windowed power.

        Power uses the engine's component-utilization model with this
        window's completion rate instead of the whole-run average, so
        the series shows power tracking load.
        """
        sim = self._sim
        if sim is None:
            return 0, 0, 0.0
        queue_depth = 0
        active = 0
        power_w = 0.0
        prev = self._prev_items
        inv_w = 1.0 / self.window_s
        for s in sim.servers:
            queue_depth += s.outstanding
            delta = s.items_done - prev.get(s.index, 0)
            prev[s.index] = s.items_done
            if not s.active:
                continue
            active += 1
            items_per_s = delta * inv_w
            st = s.server_type
            t = s.timings
            cpu = min(1.0, items_per_s * t.cpu_core_s_per_item / st.cpu.cores)
            gpu = min(1.0, items_per_s * t.gpu_busy_s_per_item)
            mem = min(
                1.0, items_per_s * t.mem_bytes_per_item / st.memory.peak_bw_bytes
            )
            power_w += st.power_w(
                ComponentUtilization(
                    cpu=cpu, memory=mem, gpu=gpu * t.gpu_power_util_scale
                )
            )
        return queue_depth, active, power_w

    def _build_control_log(self, result) -> list[dict]:
        """Merge scaler ticks, fault events, and phases onto one timeline."""
        events: list[dict] = list(self._ticks)
        for ev in result.fault_events:
            events.append(
                {
                    "t": ev.time_s,
                    "kind": "fault",
                    "fault": ev.kind,
                    "server": ev.server_index,
                    "factor": ev.factor,
                }
            )
        for ph in result.phases:
            events.append(
                {
                    "t": ph.start_s,
                    "kind": "phase",
                    "end_s": ph.end_s,
                    "completed": ph.completed,
                    "p99_ms": ph.p99_ms,
                }
            )
        events.sort(key=lambda e: e["t"])
        return events

    # -- export --------------------------------------------------------

    def export_metrics(self, path: str) -> None:
        """Write the windowed series as CSV or JSONL (by extension).

        Floats are written with ``repr`` so the files round-trip
        exactly, matching the recorded-trace convention.
        """
        if not self.metrics:
            raise ValueError("probe was built with metrics=False")
        if path.endswith(".csv"):
            with open(path, "w") as fh:
                fh.write(",".join(METRIC_FIELDS) + "\n")
                for row in self.metrics_rows:
                    fh.write(
                        ",".join(_cell(row[field]) for field in METRIC_FIELDS)
                        + "\n"
                    )
        elif path.endswith(".jsonl"):
            with open(path, "w") as fh:
                for row in self.metrics_rows:
                    fh.write(json.dumps(row) + "\n")
        else:
            raise ValueError(
                f"metrics path must end in .csv or .jsonl, got {path!r}"
            )

    def export_trace(self, path: str) -> None:
        """Write spans + control timeline as JSONL, or Chrome JSON.

        ``.jsonl`` gets one tagged object per line (``type`` is
        ``span``, ``control``, or ``meta``); ``.json`` gets a Chrome
        trace-event file loadable in Perfetto / ``chrome://tracing``.
        """
        if not self.trace:
            raise ValueError("probe was built with trace=False")
        from repro.obs.trace import chrome_trace, write_trace_jsonl

        if path.endswith(".json") and not path.endswith(".jsonl"):
            doc = chrome_trace(
                self.spans,
                self.control_events,
                warmup_s=self.warmup_s,
                horizon=self.horizon,
            )
            with open(path, "w") as fh:
                json.dump(doc, fh)
        elif path.endswith(".jsonl"):
            write_trace_jsonl(
                path,
                self.spans,
                self.control_events,
                warmup_s=self.warmup_s,
                horizon=self.horizon,
            )
        else:
            raise ValueError(
                f"trace path must end in .json or .jsonl, got {path!r}"
            )


def _cell(value) -> str:
    """One CSV cell: repr for floats (exact round-trip), str otherwise."""
    if isinstance(value, float):
        return repr(value)
    return str(value)
