"""Grid carbon-intensity traces: on-disk replay and synthetic models.

A :class:`CarbonTrace` is the :class:`~repro.traces.RecordedTrace`
sibling for the grid signal: a step-function time series of carbon
intensity (gCO2 per kWh) the fleet's energy is priced against.  The
on-disk formats mirror the arrival-trace conventions exactly:

- **CSV**: header ``time_s,gco2_per_kwh``, one breakpoint per row.
- **JSONL**: one object per line with keys ``t``, ``gco2_per_kwh``.

Floats are written with ``repr`` so a write/read round trip is exact
(bit-identical breakpoints -- pinned by the hypothesis lane in
``tests/test_carbon.py``), malformed rows raise ``"{path}:{line}: ..."``
errors, and the format comes from the extension unless forced.  Unlike
arrival traces, a carbon series is small (hourly grid data: dozens to
thousands of points), so the trace is held in memory and offers exact
step-function integration, which the deferrable-job planner needs.

Synthetic constructors cover the two shapes the carbon-aware-computing
literature leans on: a **diurnal** sinusoid (solar dip midday, fossil
peak in the evening) sampled into piecewise-constant segments, and an
explicit **step** schedule.
"""

from __future__ import annotations

import bisect
import json
import math
import os
from typing import Sequence

__all__ = ["CarbonTrace", "save_carbon_trace", "read_carbon_trace"]

_CSV_FIELDS = ("time_s", "gco2_per_kwh")


def _format_for(path: str, fmt: str | None) -> str:
    if fmt is not None:
        if fmt not in ("csv", "jsonl"):
            raise ValueError(
                f"unknown carbon trace format {fmt!r}; use 'csv' or 'jsonl'"
            )
        return fmt
    ext = os.path.splitext(path)[1].lower()
    if ext == ".csv":
        return "csv"
    if ext in (".jsonl", ".ndjson"):
        return "jsonl"
    raise ValueError(
        f"cannot infer carbon trace format from {path!r}; use a .csv or "
        ".jsonl extension or pass fmt="
    )


def save_carbon_trace(path: str, trace: "CarbonTrace", fmt: str | None = None) -> int:
    """Write a carbon trace file; returns the number of breakpoints.

    Floats go out via ``repr``, so reading the file back reproduces the
    trace bit-for-bit (same convention as the arrival-trace writer).
    """
    fmt = _format_for(path, fmt)
    count = 0
    with open(path, "w") as fh:
        if fmt == "csv":
            fh.write(",".join(_CSV_FIELDS) + "\n")
            for t, g in zip(trace.times, trace.intensities):
                fh.write(f"{t!r},{g!r}\n")
                count += 1
        else:
            for t, g in zip(trace.times, trace.intensities):
                fh.write(json.dumps({"t": t, "gco2_per_kwh": g}) + "\n")
                count += 1
    return count


def read_carbon_trace(
    path: str, fmt: str | None = None
) -> "CarbonTrace":
    """Read a carbon trace file into a :class:`CarbonTrace`.

    Every malformed row raises a :class:`ValueError` prefixed
    ``"{path}:{line}:"`` naming the offending line, matching the
    arrival-trace reader's convention.
    """
    fmt = _format_for(path, fmt)
    times: list[float] = []
    intensities: list[float] = []

    def add(line_no: int, t, g) -> None:
        try:
            t = float(t)
            g = float(g)
        except (TypeError, ValueError):
            raise ValueError(
                f"{path}:{line_no}: breakpoint is not numeric "
                f"(time={t!r}, intensity={g!r})"
            )
        if g < 0.0:
            raise ValueError(
                f"{path}:{line_no}: carbon intensity must be >= 0, got {g!r}"
            )
        if times and t <= times[-1]:
            raise ValueError(
                f"{path}:{line_no}: breakpoint times must strictly "
                f"increase (t={t!r} after t={times[-1]!r})"
            )
        times.append(t)
        intensities.append(g)

    with open(path) as fh:
        if fmt == "csv":
            header = fh.readline().strip()
            fields = [f.strip() for f in header.split(",")]
            if "time_s" not in fields or "gco2_per_kwh" not in fields:
                raise ValueError(
                    f"{path}: carbon CSV needs time_s and gco2_per_kwh "
                    f"columns (header was {header!r})"
                )
            idx = {name: fields.index(name) for name in fields}
            for line_no, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) < len(fields):
                    raise ValueError(
                        f"{path}:{line_no}: row has {len(parts)} columns "
                        f"but the header names {len(fields)} ({line!r})"
                    )
                add(line_no, parts[idx["time_s"]], parts[idx["gco2_per_kwh"]])
        else:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{line_no}: invalid JSON ({exc.msg})"
                    )
                if "t" not in rec or "gco2_per_kwh" not in rec:
                    raise ValueError(
                        f"{path}:{line_no}: record needs keys t and "
                        f"gco2_per_kwh ({line!r})"
                    )
                add(line_no, rec["t"], rec["gco2_per_kwh"])
    if not times:
        raise ValueError(f"{path}: empty carbon trace file")
    return CarbonTrace(times, intensities)


class CarbonTrace:
    """A step-function carbon-intensity series (gCO2 per kWh).

    ``intensity_at(t)`` holds each breakpoint's value until the next
    one; the first value extends backward before the first breakpoint
    and the last extends forward past ``end_s`` (grid data keeps
    arriving; a replay outlasting the series sees the latest reading).
    Integration is exact over the step function, which makes the
    deferrable planner's slot search deterministic and closed-form.
    """

    __slots__ = ("times", "intensities")

    def __init__(
        self, times: Sequence[float], intensities: Sequence[float]
    ) -> None:
        if len(times) != len(intensities):
            raise ValueError(
                f"times and intensities must pair up "
                f"({len(times)} vs {len(intensities)})"
            )
        if not times:
            raise ValueError("a carbon trace needs at least one breakpoint")
        self.times = tuple(float(t) for t in times)
        self.intensities = tuple(float(g) for g in intensities)
        prev = None
        for t in self.times:
            if prev is not None and t <= prev:
                raise ValueError(
                    f"breakpoint times must strictly increase "
                    f"(t={t!r} after t={prev!r})"
                )
            prev = t
        for g in self.intensities:
            if g < 0.0:
                raise ValueError(f"carbon intensity must be >= 0, got {g!r}")

    # -- constructors ---------------------------------------------------

    @classmethod
    def constant(cls, intensity: float) -> "CarbonTrace":
        """A flat grid: every joule costs the same."""
        return cls((0.0,), (intensity,))

    @classmethod
    def step(
        cls, times: Sequence[float], intensities: Sequence[float]
    ) -> "CarbonTrace":
        """An explicit breakpoint schedule (alias of the constructor)."""
        return cls(times, intensities)

    @classmethod
    def diurnal(
        cls,
        base: float = 350.0,
        swing: float = 150.0,
        period_s: float = 86400.0,
        trough_at: float = 0.5,
        steps: int = 24,
        days: int = 1,
        start_s: float = 0.0,
    ) -> "CarbonTrace":
        """A sinusoidal day sampled into piecewise-constant segments.

        Intensity dips to ``base - swing`` at ``trough_at`` (fraction
        of the period; 0.5 = solar midday) and peaks at ``base +
        swing`` half a period away.  Each of the ``steps`` segments per
        period takes the sinusoid's value at its midpoint, repeated for
        ``days`` periods.
        """
        if swing < 0.0 or base - swing < 0.0:
            raise ValueError("need 0 <= swing <= base (intensity stays >= 0)")
        if period_s <= 0.0 or steps < 1 or days < 1:
            raise ValueError("need period_s > 0, steps >= 1, days >= 1")
        seg = period_s / steps
        times = []
        intensities = []
        for k in range(steps * days):
            mid = (k + 0.5) * seg
            phase = (mid / period_s) - trough_at
            times.append(start_s + k * seg)
            intensities.append(base - swing * math.cos(2.0 * math.pi * phase))
        return cls(times, intensities)

    @classmethod
    def load(cls, path: str, fmt: str | None = None) -> "CarbonTrace":
        """Read a trace file (see :func:`read_carbon_trace`)."""
        return read_carbon_trace(path, fmt=fmt)

    # -- queries --------------------------------------------------------

    @property
    def start_s(self) -> float:
        return self.times[0]

    @property
    def end_s(self) -> float:
        """Last breakpoint (the value holds beyond it)."""
        return self.times[-1]

    def intensity_at(self, t: float) -> float:
        """The step function's value at ``t`` (gCO2/kWh)."""
        times = self.times
        if t < times[0]:
            return self.intensities[0]
        j = bisect.bisect_right(times, t) - 1
        return self.intensities[j]

    def integral(self, t0: float, t1: float) -> float:
        """Exact ``∫ intensity dt`` over ``[t0, t1]`` (gCO2/kWh x s)."""
        if t1 <= t0:
            return 0.0
        times = self.times
        vals = self.intensities
        total = 0.0
        cursor = t0
        j = max(bisect.bisect_right(times, t0) - 1, 0)
        n = len(times)
        while cursor < t1:
            seg_end = times[j + 1] if j + 1 < n else t1
            upto = min(seg_end, t1)
            if upto > cursor:
                total += vals[j] * (upto - cursor)
                cursor = upto
            if j + 1 < n and cursor >= times[j + 1]:
                j += 1
        return total

    def mean(self, t0: float, t1: float) -> float:
        """Time-average intensity over ``[t0, t1]``."""
        if t1 <= t0:
            return self.intensity_at(t0)
        return self.integral(t0, t1) / (t1 - t0)

    def breakpoints_between(self, t0: float, t1: float) -> list[float]:
        """Breakpoint times strictly inside ``(t0, t1)``, in order."""
        lo = bisect.bisect_right(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        return list(self.times[lo:hi])

    def lowest_window(
        self, duration_s: float, earliest_s: float, latest_start_s: float
    ) -> float:
        """Earliest start in ``[earliest, latest_start]`` minimizing the
        window integral ``∫ intensity`` over ``[start, start+duration]``.

        For a step function the optimum lies where the window boundary
        aligns with a breakpoint (or at the interval's own ends), so
        only those candidate starts are priced.  Ties resolve to the
        earliest start -- deterministic, and it fills grid troughs
        front-to-back.
        """
        if latest_start_s < earliest_s:
            raise ValueError("latest_start_s must be >= earliest_s")
        if duration_s <= 0.0:
            return earliest_s
        candidates = {earliest_s, latest_start_s}
        for bp in self.times:
            for start in (bp, bp - duration_s):
                if earliest_s < start < latest_start_s:
                    candidates.add(start)
        best_start = earliest_s
        best_cost = None
        for start in sorted(candidates):
            cost = self.integral(start, start + duration_s)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_start = start
        return best_start

    # -- persistence ----------------------------------------------------

    def save(self, path: str, fmt: str | None = None) -> int:
        """Write this trace (see :func:`save_carbon_trace`)."""
        return save_carbon_trace(path, self, fmt=fmt)

    def __len__(self) -> int:
        return len(self.times)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CarbonTrace):
            return NotImplemented
        return self.times == other.times and self.intensities == other.intensities

    def __hash__(self) -> int:
        return hash((self.times, self.intensities))

    def __repr__(self) -> str:
        return (
            f"CarbonTrace({len(self.times)} breakpoints, "
            f"[{self.start_s:g}s, {self.end_s:g}s], "
            f"{min(self.intensities):g}-{max(self.intensities):g} gCO2/kWh)"
        )
