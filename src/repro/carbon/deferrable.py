"""Deferrable batch jobs and carbon-aware scheduling policies.

The carbon-aware-computing exemplar splits datacenter work in two:
SLA-bound **real-time** traffic that must run the moment it arrives
(the fleet replay), and **deferrable** batch jobs (training runs,
index builds, media pipelines) that only need to finish by a deadline.
Time-shifting the second class into low-carbon-intensity hours is the
cheapest decarbonization lever a fleet has; this module provides the
job model, the four policies, and a deterministic executor that runs
the jobs on the fleet's timeline next to the measured real-time power
draw, under an optional fleet-wide power cap.

Policies (``DEFERRABLE_POLICIES``):

- ``no-wait`` -- the baseline: start at submit, run to completion.
- ``lowest-carbon-slot`` -- pick the contiguous slot inside the job's
  feasible window with the smallest carbon integral, then run it like
  a no-wait job shifted to that slot.
- ``carbon-waiting`` -- wait out above-average intensity: run during
  the feasible window's below-mean periods (suspending across peaks),
  topping up with the cheapest remaining seconds when the troughs
  cannot fit the work; a policy-ladder guard falls back to the best
  contiguous slot when waiting would cost more, so the exemplar's
  emission ordering ``no-wait >= lowest-carbon-slot >=
  carbon-waiting`` holds on every trace.
- ``suspend-resume`` -- preemptive optimum: run exactly the cheapest
  ``duration_s`` seconds of the feasible window (optimal for a step
  trace), suspending and resuming across intensity peaks regardless
  of when they fall.

Every policy is deadline-safe by construction: a job is *forced* to
run once ``now + remaining >= latest_finish``, so under an admitting
power cap no policy trades a deadline for carbon.  The power cap binds
the sum of real-time fleet power and running deferrable jobs; when
headroom runs out, forced jobs win, then earlier deadlines, then
submission order -- deterministic, no RNG anywhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.carbon.trace import CarbonTrace
from repro.fleet.report import J_PER_KWH

__all__ = [
    "DeferrableJob",
    "JobOutcome",
    "DeferrableReport",
    "DEFERRABLE_POLICIES",
    "run_deferrable",
]

DEFERRABLE_POLICIES = (
    "no-wait",
    "lowest-carbon-slot",
    "carbon-waiting",
    "suspend-resume",
)

_EPS = 1e-9


@dataclass(frozen=True)
class DeferrableJob:
    """One deadline-bound batch job.

    Attributes:
        name: Stable identifier (report key).
        submit_s: Arrival time; the job may not run earlier.
        duration_s: Active compute time needed to complete.
        power_w: Power drawn while running (0 while suspended).
        deadline_s: Absolute completion deadline.
    """

    name: str
    submit_s: float
    duration_s: float
    power_w: float
    deadline_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ValueError(f"job {self.name!r}: duration_s must be > 0")
        if self.power_w < 0.0:
            raise ValueError(f"job {self.name!r}: power_w must be >= 0")
        if self.submit_s < 0.0:
            raise ValueError(f"job {self.name!r}: submit_s must be >= 0")
        if self.deadline_s < self.submit_s:
            raise ValueError(
                f"job {self.name!r}: deadline_s precedes submit_s"
            )


@dataclass(frozen=True)
class JobOutcome:
    """Terminal accounting for one deferrable job.

    ``status`` is one of ``"completed"`` (ran to completion by its
    deadline), ``"suspended"`` (unfinished at the horizon with the
    deadline still open), or ``"dropped"`` (deadline passed with work
    remaining).  ``run_windows`` are the merged ``[start, end)``
    intervals the job actually ran; ``suspensions`` counts mid-flight
    stops (a job that starts and finishes in one window has zero).
    """

    name: str
    status: str
    submit_s: float
    deadline_s: float
    start_s: float | None
    finish_s: float | None
    run_s: float
    remaining_s: float
    suspensions: int
    energy_kwh: float
    gco2_g: float
    run_windows: tuple[tuple[float, float], ...]

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["run_windows"] = [list(w) for w in self.run_windows]
        return doc


@dataclass(frozen=True)
class DeferrableReport:
    """Outcome of one deferrable-executor run."""

    policy: str
    power_cap_w: float | None
    horizon_s: float
    outcomes: tuple[JobOutcome, ...]

    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "completed")

    @property
    def suspended(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "suspended")

    @property
    def dropped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "dropped")

    @property
    def suspension_events(self) -> int:
        return sum(o.suspensions for o in self.outcomes)

    @property
    def total_gco2(self) -> float:
        return sum(o.gco2_g for o in self.outcomes)

    @property
    def energy_kwh(self) -> float:
        return sum(o.energy_kwh for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "power_cap_w": self.power_cap_w,
            "horizon_s": self.horizon_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "suspended": self.suspended,
            "dropped": self.dropped,
            "suspension_events": self.suspension_events,
            "total_gco2": self.total_gco2,
            "energy_kwh": self.energy_kwh,
            "jobs": [o.to_dict() for o in self.outcomes],
        }


class _JobState:
    """Mutable execution state for one job during the sweep."""

    __slots__ = (
        "job",
        "order",
        "latest_finish",
        "plan",
        "remaining",
        "running",
        "started_at",
        "finish",
        "status",
        "suspensions",
        "gco2_int",
        "windows",
        "window_open",
    )

    def __init__(self, job: DeferrableJob, order: int, latest_finish: float):
        self.job = job
        self.order = order
        self.latest_finish = latest_finish
        self.plan: list[tuple[float, float]] = []
        self.remaining = job.duration_s
        self.running = False
        self.started_at: float | None = None
        self.finish: float | None = None
        self.status = "pending"
        self.suspensions = 0
        self.gco2_int = 0.0  # ∫ intensity dt over run windows
        self.windows: list[list[float]] = []
        self.window_open = False

    @property
    def forced_at(self) -> float:
        """Time past which the job must run continuously to finish."""
        return self.latest_finish - self.remaining

    def wants(self, t: float) -> bool:
        for s, e in self.plan:
            if s - _EPS <= t < e:
                return True
        return False

    def plan_end_at(self, t: float) -> float:
        """End of the plan window covering ``t`` (inf if none)."""
        for s, e in self.plan:
            if s - _EPS <= t < e:
                return e
        return float("inf")


def _plan_windows(
    policy: str,
    job: DeferrableJob,
    carbon: CarbonTrace,
    latest_finish: float,
    horizon_s: float,
) -> list[tuple[float, float]]:
    """The job's desired run intervals, before cap contention."""
    submit = job.submit_s
    duration = job.duration_s
    latest_start = max(submit, latest_finish - duration)
    inf = float("inf")
    if policy == "no-wait":
        return [(submit, inf)]
    if policy == "lowest-carbon-slot":
        start = carbon.lowest_window(duration, submit, latest_start)
        return [(start, inf)]
    if policy == "carbon-waiting":
        # Wait out above-average intensity: run during the feasible
        # window's below-mean periods chronologically (suspending
        # across peaks), topping up with the cheapest remaining
        # seconds when the troughs alone cannot fit the work.
        window_end = max(latest_finish, submit + duration)
        threshold = carbon.mean(submit, window_end)
        bounds = [submit, *carbon.breakpoints_between(submit, window_end), window_end]
        segs = [
            (carbon.intensity_at(s), s, e)
            for s, e in zip(bounds, bounds[1:])
            if e > s
        ]
        chosen: list[tuple[float, float]] = []
        need = duration
        for g, s, e in segs:
            if need <= _EPS:
                break
            if g <= threshold:
                take = min(e - s, need)
                # Full-segment takes keep the exact boundary: s + take
                # can land an ulp off the breakpoint and desync the
                # plan edge from every other job's.
                chosen.append((s, e if take == e - s else s + take))
                need -= take
        if need > _EPS:
            for g, s, e in sorted(
                (seg for seg in segs if seg[0] > threshold),
                key=lambda seg: (seg[0], seg[1]),
            ):
                if need <= _EPS:
                    break
                take = min(e - s, need)
                chosen.append((s, e if take == e - s else s + take))
                need -= take
        chosen.sort()
        merged: list[tuple[float, float]] = []
        for s, e in chosen:
            if merged and s <= merged[-1][1] + _EPS:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        # Policy-ladder guard: waiting must never cost more carbon
        # than the best *contiguous* slot (a below-mean trough can
        # still be pricier than a deep later one) -- so the exemplar's
        # ordering no-wait >= lowest-carbon-slot >= carbon-waiting
        # holds on every trace, not just friendly ones.
        slot_start = carbon.lowest_window(duration, submit, latest_start)
        slot_cost = carbon.integral(slot_start, slot_start + duration)
        wait_cost = sum(carbon.integral(s, e) for s, e in merged)
        if not merged or slot_cost < wait_cost - _EPS:
            return [(slot_start, inf)]
        return merged
    if policy == "suspend-resume":
        # Preemptive optimum on a step trace: take the cheapest
        # duration_s seconds of the feasible window, earliest-first on
        # intensity ties.
        window_end = min(latest_finish, max(horizon_s, submit))
        if window_end <= submit:
            return [(submit, inf)]
        bounds = [submit, *carbon.breakpoints_between(submit, window_end), window_end]
        segments = [
            (carbon.intensity_at(s), s, e)
            for s, e in zip(bounds, bounds[1:])
            if e > s
        ]
        segments.sort(key=lambda seg: (seg[0], seg[1]))
        need = duration
        chosen: list[tuple[float, float]] = []
        for _, s, e in segments:
            if need <= _EPS:
                break
            take = min(e - s, need)
            chosen.append((s, e if take == e - s else s + take))
            need -= take
        if need > _EPS:
            # Window shorter than the work: run everything available.
            chosen = [(submit, window_end)]
        chosen.sort()
        # The executor's forced-run safety net covers cap-induced slip;
        # leave the tail open so a slipped job may keep running.
        if chosen:
            last_s, last_e = chosen[-1]
            chosen[-1] = (last_s, float("inf")) if last_e >= window_end - _EPS else (last_s, last_e)
        return chosen or [(submit, inf)]
    raise ValueError(
        f"unknown deferrable policy {policy!r}; one of "
        f"{', '.join(DEFERRABLE_POLICIES)}"
    )


def _profile_power(profile, t: float) -> float:
    """Real-time fleet power at ``t`` from per-replica active windows."""
    total = 0.0
    for start, end, power in profile:
        if start - _EPS <= t < end:
            total += power
    return total


def run_deferrable(
    jobs: Sequence[DeferrableJob],
    carbon: CarbonTrace,
    *,
    policy: str = "no-wait",
    horizon_s: float,
    power_cap_w: float | None = None,
    realtime_profile: Sequence[tuple[float, float, float]] = (),
    deferral_horizon_s: float | None = None,
) -> DeferrableReport:
    """Execute deferrable jobs on the fleet timeline, deterministically.

    Args:
        jobs: The batch jobs to place.
        carbon: Grid intensity series pricing every run window.
        policy: One of :data:`DEFERRABLE_POLICIES`.
        horizon_s: Executor horizon -- normally the fleet replay's
            measurement horizon, so jobs and real-time traffic share
            the window.  Work unfinished here ends ``"suspended"``
            (deadline still open) or ``"dropped"`` (deadline passed).
        power_cap_w: Fleet-wide power cap binding real-time draw plus
            running jobs (None = uncapped).  Real-time traffic is
            never throttled -- it is SLA-bound; only jobs yield.
        realtime_profile: ``(start_s, end_s, power_w)`` activation
            windows of the serving replicas (each replica's average
            active power spread over its recorded windows).
        deferral_horizon_s: Cap on how long completion may slip past
            the no-wait finish: the effective deadline becomes
            ``min(deadline_s, submit_s + duration_s + this)``.  None
            leaves the job's own deadline as the only bound.

    Returns:
        A :class:`DeferrableReport`; job order follows the input.
    """
    if policy not in DEFERRABLE_POLICIES:
        raise ValueError(
            f"unknown deferrable policy {policy!r}; one of "
            f"{', '.join(DEFERRABLE_POLICIES)}"
        )
    if horizon_s <= 0.0:
        raise ValueError("horizon_s must be > 0")
    if power_cap_w is not None and power_cap_w <= 0.0:
        raise ValueError("power_cap_w must be > 0 (or None to disable)")
    if deferral_horizon_s is not None and deferral_horizon_s < 0.0:
        raise ValueError("deferral_horizon_s must be >= 0 (or None)")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise ValueError("deferrable job names must be unique")

    states: list[_JobState] = []
    for order, job in enumerate(jobs):
        latest_finish = job.deadline_s
        if deferral_horizon_s is not None:
            latest_finish = min(
                latest_finish, job.submit_s + job.duration_s + deferral_horizon_s
            )
        st = _JobState(job, order, latest_finish)
        st.plan = _plan_windows(policy, job, carbon, latest_finish, horizon_s)
        states.append(st)

    # Static decision times: job submits/deadlines, planned window
    # edges, and real-time power steps.  Completions and forced-run
    # moments are injected dynamically as the sweep advances.
    static = {0.0, horizon_s}
    for st in states:
        static.add(st.job.submit_s)
        static.add(st.latest_finish)
        for s, e in st.plan:
            static.add(s)
            if e != float("inf"):
                static.add(e)
    for start, end, _ in realtime_profile:
        static.add(start)
        static.add(end)
    timeline = sorted(t for t in static if 0.0 <= t <= horizon_s)

    def admit(t: float) -> list[_JobState]:
        """Who runs in the segment starting at ``t``."""
        candidates = []
        for st in states:
            if st.status != "pending" or st.remaining <= _EPS:
                continue
            if t < st.job.submit_s - _EPS or t >= st.latest_finish - _EPS:
                continue
            forced = t >= st.forced_at - _EPS
            if forced or st.wants(t):
                candidates.append((not forced, st.latest_finish, st.order, st))
        candidates.sort(key=lambda c: c[:3])
        if power_cap_w is None:
            return [c[3] for c in candidates]
        headroom = power_cap_w - _profile_power(realtime_profile, t)
        admitted = []
        for _, _, _, st in candidates:
            if st.job.power_w <= headroom + _EPS:
                admitted.append(st)
                headroom -= st.job.power_w
        return admitted

    cursor = 0.0
    idx = 0
    while cursor < horizon_s - _EPS:
        # Retire deadlines crossed at the cursor.
        for st in states:
            if st.status == "pending" and cursor >= st.latest_finish - _EPS:
                if st.remaining > _EPS:
                    st.status = "dropped"
                    if st.window_open:
                        st.windows[-1][1] = min(cursor, st.windows[-1][1])
                        st.window_open = False
        running = admit(cursor)
        running_set = set(id(st) for st in running)
        for st in states:
            was = st.running
            now_running = id(st) in running_set
            if was and not now_running and st.remaining > _EPS:
                if st.status == "pending":
                    st.suspensions += 1
                if st.window_open:
                    st.windows[-1][1] = cursor
                    st.window_open = False
            if now_running and not was:
                if st.started_at is None:
                    st.started_at = cursor
                st.windows.append([cursor, cursor])
                st.window_open = True
            st.running = now_running

        # Next event: static boundary, a completion, or a forced-run
        # moment for a job that is currently waiting.
        while idx < len(timeline) and timeline[idx] <= cursor + _EPS:
            idx += 1
        nxt = timeline[idx] if idx < len(timeline) else horizon_s
        for st in running:
            nxt = min(nxt, cursor + st.remaining)
            if cursor < st.forced_at - _EPS:
                # Plan-driven run: never coast past this window's end.
                # The static timeline holds the edge too, but edges of
                # different jobs can sit within _EPS of each other and
                # the dedup skip would swallow the later one.
                nxt = min(nxt, st.plan_end_at(cursor))
        for st in states:
            if (
                st.status == "pending"
                and not st.running
                and st.remaining > _EPS
                and st.forced_at > cursor + _EPS
            ):
                nxt = min(nxt, st.forced_at)
        nxt = min(nxt, horizon_s)
        if nxt <= cursor + _EPS:
            nxt = cursor + _EPS  # defensive: always advance
        dt = nxt - cursor
        for st in running:
            ran = min(dt, st.remaining)
            st.gco2_int += carbon.integral(cursor, cursor + ran)
            st.remaining -= ran
            st.windows[-1][1] = cursor + ran
            if st.remaining <= _EPS:
                st.remaining = 0.0
                st.status = "completed"
                st.finish = cursor + ran
                st.running = False
                st.window_open = False
        cursor = nxt

    # Horizon reached: close open windows, classify leftovers.
    for st in states:
        if st.window_open:
            st.windows[-1][1] = min(horizon_s, st.windows[-1][1])
            st.window_open = False
        if st.status == "pending":
            st.status = (
                "dropped" if st.latest_finish <= horizon_s + _EPS else "suspended"
            )

    outcomes = []
    for st in states:
        job = st.job
        run_s = sum(e - s for s, e in st.windows)
        outcomes.append(
            JobOutcome(
                name=job.name,
                status=st.status,
                submit_s=job.submit_s,
                deadline_s=st.latest_finish,
                start_s=st.started_at,
                finish_s=st.finish,
                run_s=run_s,
                remaining_s=st.remaining,
                suspensions=st.suspensions,
                energy_kwh=job.power_w * run_s / J_PER_KWH,
                gco2_g=job.power_w * st.gco2_int / J_PER_KWH,
                run_windows=tuple((s, e) for s, e in st.windows),
            )
        )
    return DeferrableReport(
        policy=policy,
        power_cap_w=power_cap_w,
        horizon_s=horizon_s,
        outcomes=tuple(outcomes),
    )
