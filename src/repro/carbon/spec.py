"""The ``--carbon`` and ``--deferrable`` CLI mini-languages.

Both follow the ``--arrivals`` conventions exactly: a spec is a list
of ``shape:key=value,...`` sections joined with ``+``, unknown or
duplicate keys raise naming the offending section, and the full
reference lives in ``docs/cli.md``.

``--carbon`` describes the grid's carbon-intensity series.  A value
ending in ``.csv``/``.jsonl`` is read as a recorded trace file
(:func:`~repro.carbon.read_carbon_trace`); otherwise it is a synthetic
spec whose sections *superpose additively* (intensities sum, sharing
every breakpoint):

- ``constant:intensity=400`` -- a flat grid at 400 gCO2/kWh.
- ``diurnal:base=350,swing=150,period=86400,trough_at=0.5,steps=24,days=1``
  -- a sinusoidal day sampled into ``steps`` piecewise-constant
  segments (trough at ``trough_at`` of the period; solar midday).
- ``step:levels=400/120/400,at=0/3600/7200`` -- explicit breakpoints.

``--deferrable`` describes deadline-bound batch jobs; each section
contributes a batch:

- ``jobs:count=4,duration=120,power=800,slack=2.0,start=0,every=600``
  -- ``count`` jobs of ``duration`` seconds at ``power`` watts,
  submitted at ``start``, ``start+every``, ...; each deadline is
  ``submit + duration * (1 + slack)``.  ``every`` defaults to
  spreading the batch evenly across the replay window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.deferrable import DeferrableJob
from repro.carbon.trace import CarbonTrace, read_carbon_trace

__all__ = [
    "CarbonSpec",
    "DeferrableSpec",
    "load_carbon",
    "parse_carbon",
    "parse_deferrable",
]

_CARBON_SHAPES = ("constant", "diurnal", "step")
_CONSTANT_KEYS = {"intensity"}
_DIURNAL_KEYS = {"base", "swing", "period", "trough_at", "steps", "days"}
_STEP_KEYS = {"levels", "at"}
_JOBS_KEYS = {"count", "duration", "power", "slack", "start", "every"}


def _parse_kv(flag: str, section: str, body: str, allowed: set[str]) -> dict:
    out: dict[str, str] = {}
    if not body:
        return out
    for pair in body.split(","):
        key, sep, value = pair.strip().partition("=")
        if not sep or key not in allowed:
            raise ValueError(
                f"bad {flag} parameter {pair!r} in section {section!r}; "
                f"known keys: {', '.join(sorted(allowed))}"
            )
        if key in out:
            raise ValueError(
                f"duplicate {flag} parameter {key!r} in section "
                f"{section!r}; each key may appear once"
            )
        out[key] = value
    return out


def _floats(text: str, what: str) -> tuple[float, ...]:
    try:
        return tuple(float(v) for v in text.split("/"))
    except ValueError:
        raise ValueError(f"bad {what} list {text!r}; use slash-separated numbers")


@dataclass(frozen=True)
class _CarbonSection:
    shape: str
    params: dict

    def build(self) -> CarbonTrace:
        p = self.params
        if self.shape == "constant":
            return CarbonTrace.constant(float(p.get("intensity", 400.0)))
        if self.shape == "diurnal":
            return CarbonTrace.diurnal(
                base=float(p.get("base", 350.0)),
                swing=float(p.get("swing", 150.0)),
                period_s=float(p.get("period", 86400.0)),
                trough_at=float(p.get("trough_at", 0.5)),
                steps=int(p.get("steps", 24)),
                days=int(p.get("days", 1)),
            )
        # step
        levels = _floats(self.params["levels"], "levels")
        at = _floats(self.params["at"], "at")
        if len(levels) != len(at):
            raise ValueError(
                f"step needs matching levels/at lists "
                f"({len(levels)} vs {len(at)})"
            )
        return CarbonTrace.step(at, levels)


@dataclass(frozen=True)
class CarbonSpec:
    """A parsed ``--carbon`` spec: one or more superposed shapes."""

    sections: tuple[_CarbonSection, ...]

    def build(self) -> CarbonTrace:
        built = [s.build() for s in self.sections]
        if len(built) == 1:
            return built[0]
        # Superpose additively on the union of breakpoints.
        times = sorted({t for tr in built for t in tr.times})
        intensities = [
            sum(tr.intensity_at(t) for tr in built) for t in times
        ]
        return CarbonTrace(times, intensities)

    def describe(self) -> str:
        return "+".join(s.shape for s in self.sections)


def parse_carbon(spec: str) -> CarbonSpec:
    """Parse the synthetic ``--carbon`` mini-language.

    Raises :class:`ValueError` naming the offending section or key.
    Trace *files* are not handled here -- the CLI routes values ending
    in ``.csv``/``.jsonl`` to :func:`~repro.carbon.read_carbon_trace`.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty --carbon spec")
    sections: list[_CarbonSection] = []
    for raw in spec.split("+"):
        raw = raw.strip()
        if not raw:
            raise ValueError(f"empty section in --carbon spec {spec!r}")
        shape, _, body = raw.partition(":")
        shape = shape.strip()
        if shape == "constant":
            params = _parse_kv("--carbon", raw, body, _CONSTANT_KEYS)
        elif shape == "diurnal":
            params = _parse_kv("--carbon", raw, body, _DIURNAL_KEYS)
        elif shape == "step":
            params = _parse_kv("--carbon", raw, body, _STEP_KEYS)
            if "levels" not in params or "at" not in params:
                raise ValueError(f"{raw!r}: step needs levels= and at=")
        else:
            raise ValueError(
                f"unknown carbon shape {shape!r} in {raw!r}; one of "
                f"{', '.join(_CARBON_SHAPES)}"
            )
        sections.append(_CarbonSection(shape, params))
    return CarbonSpec(tuple(sections))


def load_carbon(value: str) -> CarbonTrace:
    """Resolve a ``--carbon`` flag value: trace file or synthetic spec."""
    if value.strip().lower().endswith((".csv", ".jsonl", ".ndjson")):
        return read_carbon_trace(value.strip())
    return parse_carbon(value).build()


@dataclass(frozen=True)
class _JobsSection:
    params: dict

    def build(self, horizon_s: float, index: int) -> tuple[DeferrableJob, ...]:
        p = self.params
        count = int(p.get("count", 1))
        if count < 1:
            raise ValueError(f"jobs count= must be >= 1, got {count}")
        if "duration" not in p or "power" not in p:
            raise ValueError("jobs needs duration= and power=")
        duration = float(p["duration"])
        power = float(p["power"])
        slack = float(p.get("slack", 1.0))
        if slack < 0.0:
            raise ValueError(f"jobs slack= must be >= 0, got {slack}")
        start = float(p.get("start", 0.0))
        if "every" in p:
            every = float(p["every"])
        else:
            every = max(horizon_s - start, 0.0) / count
        jobs = []
        for i in range(count):
            submit = start + i * every
            jobs.append(
                DeferrableJob(
                    name=f"job-{index}-{i}",
                    submit_s=submit,
                    duration_s=duration,
                    power_w=power,
                    deadline_s=submit + duration * (1.0 + slack),
                )
            )
        return tuple(jobs)


@dataclass(frozen=True)
class DeferrableSpec:
    """A parsed ``--deferrable`` spec: one or more job batches."""

    sections: tuple[_JobsSection, ...]

    def build(self, horizon_s: float) -> tuple[DeferrableJob, ...]:
        """Instantiate the jobs against the replay window length."""
        if horizon_s <= 0.0:
            raise ValueError("horizon_s must be > 0")
        jobs: list[DeferrableJob] = []
        for index, section in enumerate(self.sections):
            jobs.extend(section.build(horizon_s, index))
        jobs.sort(key=lambda j: (j.submit_s, j.name))
        return tuple(jobs)

    def describe(self) -> str:
        return "+".join(
            f"jobs x{int(s.params.get('count', 1))}" for s in self.sections
        )


def parse_deferrable(spec: str) -> DeferrableSpec:
    """Parse the ``--deferrable`` mini-language."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty --deferrable spec")
    sections: list[_JobsSection] = []
    for raw in spec.split("+"):
        raw = raw.strip()
        if not raw:
            raise ValueError(f"empty section in --deferrable spec {spec!r}")
        shape, _, body = raw.partition(":")
        if shape.strip() != "jobs":
            raise ValueError(
                f"unknown deferrable shape {shape.strip()!r} in {raw!r}; "
                "only 'jobs' is defined"
            )
        params = _parse_kv("--deferrable", raw, body, _JOBS_KEYS)
        if "duration" not in params or "power" not in params:
            raise ValueError(f"{raw!r}: jobs needs duration= and power=")
        sections.append(_JobsSection(params))
    return DeferrableSpec(tuple(sections))
