"""Carbon-aware fleet operation: traces, deferrable jobs, accounting.

Grid carbon intensity as a first-class time series
(:class:`CarbonTrace`), deadline-bound batch jobs with carbon-aware
scheduling policies (:mod:`repro.carbon.deferrable`), and gCO2
accounting that prices the fleet's measured energy against the grid
(:mod:`repro.carbon.accounting`).  See ``docs/carbon.md``.
"""

from repro.carbon.accounting import (
    attach_carbon,
    realtime_emissions_g,
    realtime_power_profile,
    summarize_carbon,
)
from repro.carbon.deferrable import (
    DEFERRABLE_POLICIES,
    DeferrableJob,
    DeferrableReport,
    JobOutcome,
    run_deferrable,
)
from repro.carbon.spec import (
    CarbonSpec,
    DeferrableSpec,
    load_carbon,
    parse_carbon,
    parse_deferrable,
)
from repro.carbon.trace import CarbonTrace, read_carbon_trace, save_carbon_trace

__all__ = [
    "CarbonTrace",
    "read_carbon_trace",
    "save_carbon_trace",
    "DeferrableJob",
    "JobOutcome",
    "DeferrableReport",
    "DEFERRABLE_POLICIES",
    "run_deferrable",
    "CarbonSpec",
    "DeferrableSpec",
    "parse_carbon",
    "parse_deferrable",
    "load_carbon",
    "attach_carbon",
    "summarize_carbon",
    "realtime_emissions_g",
    "realtime_power_profile",
]
