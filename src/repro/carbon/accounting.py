"""gCO2 accounting: price the fleet's measured energy with the grid.

The fleet engine already measures active-time-weighted energy per
replica (``power_w() x active_s``); this module integrates that energy
against a :class:`~repro.carbon.CarbonTrace` to turn joules into grams
of CO2.  Each replica's average active power is spread over its
*recorded activation windows* -- exact for static fleets (one window:
the whole horizon) and honest for autoscaled/faulted fleets, where a
replica's draw is priced only over the intervals it was actually on.

The same windows double as the real-time power profile the deferrable
executor's power cap binds against, so "cap minus serving draw" uses
the identical accounting the emissions do.
"""

from __future__ import annotations

import dataclasses

from repro.carbon.deferrable import DeferrableReport
from repro.carbon.trace import CarbonTrace
from repro.fleet.report import CarbonStats, FleetResult, J_PER_KWH

__all__ = [
    "realtime_power_profile",
    "realtime_emissions_g",
    "summarize_carbon",
    "attach_carbon",
]


def realtime_power_profile(servers) -> tuple[tuple[float, float, float], ...]:
    """Per-replica ``(start_s, end_s, power_w)`` activation windows.

    Requires window recording (``FleetServer.active_windows``), enabled
    by the engine whenever a carbon trace is attached.  Replicas that
    never served contribute nothing (their power is 0 anyway).
    """
    profile = []
    for s in servers:
        windows = getattr(s, "active_windows", None)
        if windows is None:
            raise ValueError(
                "carbon accounting needs per-replica activation windows; "
                "run the fleet with carbon= set (the engine records them)"
            )
        power = s.power_w()
        if power <= 0.0:
            continue
        for start, end in windows:
            if end > start:
                profile.append((start, end, power))
    return tuple(profile)


def realtime_emissions_g(
    servers, carbon: CarbonTrace
) -> tuple[float, float]:
    """Emissions and energy of the serving replicas.

    Returns ``(gco2_g, energy_kwh)``: each replica's average active
    power integrated against the trace over its activation windows, in
    fleet-index order (deterministic float accumulation).
    """
    total_g = 0.0
    total_kwh = 0.0
    for s in servers:
        windows = getattr(s, "active_windows", None)
        if windows is None:
            raise ValueError(
                "carbon accounting needs per-replica activation windows; "
                "run the fleet with carbon= set (the engine records them)"
            )
        power = s.power_w()
        if power <= 0.0:
            continue
        for start, end in windows:
            if end > start:
                total_g += power * carbon.integral(start, end) / J_PER_KWH
                total_kwh += power * (end - start) / J_PER_KWH
    return total_g, total_kwh


def summarize_carbon(
    servers,
    carbon: CarbonTrace,
    horizon_s: float,
    deferrable: DeferrableReport | None = None,
) -> CarbonStats:
    """Fold replica windows (and an optional deferrable report) into
    the :class:`~repro.fleet.report.CarbonStats` row."""
    realtime_g, energy_kwh = realtime_emissions_g(servers, carbon)
    if deferrable is None:
        return CarbonStats(
            total_g=realtime_g,
            realtime_g=realtime_g,
            deferrable_g=0.0,
            energy_kwh=energy_kwh,
            deferrable_energy_kwh=0.0,
            mean_intensity=carbon.mean(0.0, horizon_s),
        )
    return CarbonStats(
        total_g=realtime_g + deferrable.total_gco2,
        realtime_g=realtime_g,
        deferrable_g=deferrable.total_gco2,
        energy_kwh=energy_kwh,
        deferrable_energy_kwh=deferrable.energy_kwh,
        mean_intensity=carbon.mean(0.0, horizon_s),
        policy=deferrable.policy,
        power_cap_w=deferrable.power_cap_w,
        jobs_submitted=deferrable.submitted,
        jobs_completed=deferrable.completed,
        jobs_suspended=deferrable.suspended,
        jobs_dropped=deferrable.dropped,
        job_suspensions=deferrable.suspension_events,
    )


def attach_carbon(
    result: FleetResult,
    servers,
    carbon: CarbonTrace,
    horizon_s: float,
    deferrable: DeferrableReport | None = None,
) -> FleetResult:
    """Return ``result`` with its ``carbon`` field populated.

    Everything else is carried through untouched -- the real-time
    report is never perturbed by carbon accounting (the differential
    lane in ``tests/test_perf_equivalence.py`` pins this).
    """
    stats = summarize_carbon(servers, carbon, horizon_s, deferrable)
    return dataclasses.replace(result, carbon=stats)
