"""Fault-aware provisioning: close the availability -> ``R`` loop.

The paper's provisioner picks an over-provision rate ``R`` up front and
sizes the cluster so every model's capacity covers ``load * (1 + R)``
(Section IV-C).  That choice is blind to how the fleet actually
degrades when replicas crash: the same ``R`` that is wasteful on a
reliable fleet is hopeless under correlated rack outages.  This module
closes the loop the way the HPC-characterization literature insists on
-- *measure*, don't assume: it replays the fault-injected fleet,
measures the service availability the allocation actually delivers,
and feeds that measurement back into ``R`` until the smallest rate
meeting a target availability is found.  The answer to "how much
standby capacity does a target availability cost in power?" falls out
as the power delta between that fixpoint and the fault-blind baseline.

Two availability notions appear throughout, both reported:

- **service availability** -- the fraction of offered queries served
  within their SLA (completions under SLA over completed + failed +
  dropped).  This is the SLO-style number a serving tier is judged by,
  and the one capacity can buy: headroom absorbs a crashed replica's
  re-routed load before the survivors' tails blow through the SLA.
- **uptime availability** -- the replica-seconds-based uptime fraction
  the fleet report already carries.  Standby capacity cannot raise it
  (crashes happen regardless); it contextualizes the service number.

The search is deterministic given (trace, schedule, seed): it first
brackets the target by geometric growth of ``R`` from ``r_min``, then
bisects the bracket down to ``r_tol``, evaluating each candidate ``R``
with one full fault-injected replay.  Service availability is treated
as monotone in ``R`` (more headroom never hurts absorption); the
stochastic wiggle around that trend is what ``r_tol`` tolerates.

Entry points: :func:`provision_fault_aware` (library),
``python -m repro.cli provision-fault-aware`` (CLI),
``benchmarks/bench_fault_aware_provisioning.py`` (the power-vs-
availability frontier sweep).

:func:`provision_carbon_aware` reuses the same bracket-then-bisect
core to answer the sibling question "what is the *lowest-carbon* fleet
that still meets a target service availability?": it bisects ``R``
down to the smallest rate whose fault-free replay meets the target
(fewer replicas = less energy = less carbon), then -- on that fixed
fleet's measured activation profile -- grid-sweeps the deferrable
executor over (policy, power cap, deferral horizon) combinations and
picks the one emitting the least gCO2 while completing every batch
job.  The sweep prices each combination with
:func:`~repro.carbon.run_deferrable` alone (no fleet replay), so its
cost is O(jobs x breakpoints) per point.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.analysis import format_table
from repro.cluster.provision import standby_power_w
from repro.cluster.state import Allocation
from repro.fleet.engine import FleetSimulator, build_fleet
from repro.fleet.report import FleetResult

if TYPE_CHECKING:
    from repro.carbon.deferrable import DeferrableJob
    from repro.carbon.trace import CarbonTrace
    from repro.fleet.faults import FaultSchedule
    from repro.models.zoo import RecommendationModel
    from repro.scheduling.profiler import ClassificationTable
    from repro.sim.queries import Query, QueryWorkload

__all__ = [
    "ProvisionEval",
    "FaultAwareProvisioning",
    "provision_fault_aware",
    "service_availability",
    "CarbonPlanPoint",
    "CarbonAwareProvisioning",
    "provision_carbon_aware",
]

#: First bracketing step when the search starts at ``r_min == 0``.
_FIRST_STEP = 0.1


def _search_min_r(evaluate, searched, *, r_min, r_max, r_tol, max_evals):
    """Bracket-then-bisect the smallest ``R`` whose evaluation passes.

    The shared search core of :func:`provision_fault_aware` and
    :func:`provision_carbon_aware`.  ``evaluate(r)`` must return an
    object with ``meets_target`` and ``shortfall_qps`` attributes (and
    memoize, so revisiting an ``R`` is free); ``searched()`` reports
    replays spent so far against ``max_evals``.  Stage 1+2 bracket the
    target from below by geometric growth of ``R``; stage 3 bisects
    the bracket down to ``r_tol``.  Returns the lowest passing ``R``,
    or None when no evaluated rate met the target (fleet exhausted or
    ``r_max`` reached).
    """
    lo: float | None = None  # highest R known to fail
    hi: float | None = None  # lowest R known to pass
    ev = evaluate(r_min)
    if ev.meets_target:
        hi = r_min
    else:
        lo = r_min
        while searched() < max_evals:
            if ev.shortfall_qps > 0 or lo >= r_max - 1e-12:
                break  # the fleet cannot buy more coverage
            r = min(r_max, max(2.0 * lo, _FIRST_STEP))
            ev = evaluate(r)
            if ev.meets_target:
                hi = r
                break
            lo = r
    while (
        hi is not None
        and lo is not None
        and hi - lo > r_tol
        and searched() < max_evals
    ):
        mid = 0.5 * (lo + hi)
        ev = evaluate(mid)
        if ev.meets_target:
            hi = mid
        else:
            lo = mid
    return hi


def service_availability(result: FleetResult) -> float:
    """Fraction of offered demand served within SLA across all models.

    ``1 - total violations / total demand`` where demand is completed +
    failed + dropped queries and violations are over-SLA completions
    plus every failed/dropped query (exactly the populations behind
    each model's ``violation_rate``).  1.0 for an empty run.
    """
    demand = 0.0
    violations = 0.0
    for stats in result.per_model.values():
        d = stats.completed + stats.failed + stats.dropped
        demand += d
        violations += stats.violation_rate * d
    return 1.0 - violations / demand if demand else 1.0


@dataclass(frozen=True)
class ProvisionEval:
    """One measured point of the availability-vs-``R`` search.

    Attributes:
        r: Over-provision rate this replay used.
        servers: Integer replica count of the allocation.
        provisioned_power_w: LP-objective power budget (profiled peak
            power of every activated replica).
        service_availability: Measured fraction of demand served
            within SLA (see :func:`service_availability`).
        uptime_availability: Measured uptime fraction from the replay.
        worst_violation_rate: Highest per-model SLA-violation rate.
        meets_target: Whether ``service_availability`` reached the
            search target.
        shortfall_qps: Unserved coverage when the fleet ran out of
            servers at this ``R`` (0 when fully covered) -- a nonzero
            shortfall caps the search.
    """

    r: float
    servers: int
    provisioned_power_w: float
    service_availability: float
    uptime_availability: float
    worst_violation_rate: float
    meets_target: bool
    shortfall_qps: float


@dataclass(frozen=True)
class FaultAwareProvisioning:
    """Outcome of one fault-aware provisioning fixpoint search.

    Attributes:
        target_availability: The service-availability target.
        converged: Whether some evaluated ``R`` met the target.
        chosen_r: Smallest evaluated rate meeting the target (None when
            the search failed -- fleet exhausted or ``r_max`` reached).
        allocation / result: The chosen allocation and its measured
            fault-injected replay (None when not converged).
        baseline_r / baseline_allocation / baseline_result: The
            fault-blind provisioner's rate, allocation, and its replay
            under the *same* fault schedule -- what you would have
            shipped without the loop.
        evaluations: Every measured point, in evaluation order.
        replays: Fault-injected replays actually run (baseline
            included) -- at most ``len(evaluations)``, fewer when
            nearby rates integerized to the same allocation.
        provisioned_power_w / baseline_power_w: Power budgets of the
            chosen and baseline allocations.
        standby_power_w: Provisioned power of the replicas the chosen
            allocation holds beyond the baseline (the cost of the
            availability headroom).
    """

    target_availability: float
    converged: bool
    chosen_r: float | None
    allocation: Allocation | None
    result: FleetResult | None
    baseline_r: float
    baseline_allocation: Allocation
    baseline_result: FleetResult
    evaluations: tuple[ProvisionEval, ...]
    replays: int
    provisioned_power_w: float
    baseline_power_w: float
    standby_power_w: float

    @property
    def power_delta_w(self) -> float:
        """Provisioned-power cost of fault awareness vs the blind
        baseline (negative when the loop proves a *smaller* ``R``
        suffices)."""
        return self.provisioned_power_w - self.baseline_power_w

    @property
    def baseline_meets_target(self) -> bool:
        return (
            service_availability(self.baseline_result) >= self.target_availability
        )

    def format(self, title: str = "") -> str:
        """Render the search trajectory and the chosen-vs-blind verdict."""
        rows = [
            [
                f"{ev.r:.3f}",
                ev.servers,
                f"{ev.provisioned_power_w / 1e3:.2f}",
                f"{ev.service_availability * 100:.3f}%",
                f"{ev.uptime_availability * 100:.2f}%",
                f"{ev.worst_violation_rate * 100:.2f}%",
                "yes" if ev.meets_target else "no",
            ]
            for ev in self.evaluations
        ]
        table = format_table(
            ["R", "servers", "prov kW", "svc avail", "uptime", "worst viol", "meets"],
            rows,
            title=title
            or (
                "fault-aware provisioning "
                f"(target availability {self.target_availability * 100:.2f}%)"
            ),
        )
        lines = [table]
        base_avail = service_availability(self.baseline_result)
        lines.append(
            f"fault-blind baseline R={self.baseline_r:.3f}: "
            f"{self.baseline_allocation.total_servers} servers, "
            f"{self.baseline_power_w / 1e3:.2f} kW provisioned, measured "
            f"service availability {base_avail * 100:.3f}%"
        )
        if self.converged:
            chosen = self.result
            lines.append(
                f"chosen R={self.chosen_r:.3f}: "
                f"{self.allocation.total_servers} servers, "
                f"{self.provisioned_power_w / 1e3:.2f} kW provisioned "
                f"({self.power_delta_w / 1e3:+.2f} kW vs fault-blind, standby "
                f"power {self.standby_power_w / 1e3:.2f} kW)"
            )
            lines.append(
                f"measured at chosen R: service availability "
                f"{service_availability(chosen) * 100:.3f}%, uptime "
                f"{chosen.availability * 100:.2f}%, drawn fleet power "
                f"{chosen.avg_power_w / 1e3:.2f} kW"
            )
        else:
            lines.append(
                "did not converge: no evaluated R met the target "
                "(fleet exhausted or r_max reached) -- best effort shown above"
            )
        return "\n".join(lines)


def provision_fault_aware(
    scheduler,
    table: "ClassificationTable",
    models: "dict[str, RecommendationModel]",
    workloads: "dict[str, QueryWorkload]",
    trace: Sequence[tuple[str, "Query"]],
    loads: dict[str, float],
    faults: "FaultSchedule",
    *,
    sla_ms: dict[str, float],
    target_availability: float = 0.999,
    baseline_r: float = 0.05,
    policy: str = "p2c",
    retries: int = 2,
    hedge_ms: float | None = None,
    seed: int = 0,
    core: str = "auto",
    percentile_mode: str = "exact",
    warmup_s: float = 0.0,
    r_min: float = 0.0,
    r_max: float = 1.0,
    r_tol: float = 0.02,
    max_evals: int = 12,
) -> FaultAwareProvisioning:
    """Iterate the fleet replay to the smallest ``R`` meeting a target.

    Each candidate over-provision rate is priced by one deterministic
    fault-injected replay of ``trace`` over the allocation
    ``scheduler.allocate(loads, over_provision=R)`` -- measured service
    availability decides whether ``R`` passes.  The search brackets the
    target geometrically from ``r_min`` and bisects to ``r_tol``; every
    replay shares the same trace, schedule, and seed, so the whole
    search is reproducible bit-for-bit.

    Args:
        scheduler: Cluster scheduler with an
            ``allocate(loads, over_provision=)`` method (typically
            :class:`~repro.cluster.schedulers.HerculesClusterScheduler`).
        table: Offline-profiled efficiency tuples for the fleet.
        models / workloads: Model objects and query workloads by name.
        trace: The ``(model, query)`` arrival traffic every evaluation
            replays -- a materialized list, or a *re-iterable* arrival
            source (:class:`~repro.traces.FleetArrivals`,
            :class:`~repro.traces.RecordedTrace`): each candidate ``R``
            restarts the stream, so identical traffic prices every
            allocation.  A one-shot iterator is materialized once up
            front.
        loads: Per-model demand (QPS) the provisioner must cover.
        faults: Fault schedule applied to every replay (its domains, if
            declared, also steer hedging and standby activation).
        sla_ms: Per-model SLA targets for violation accounting.
        target_availability: Service-availability target in (0, 1].
        baseline_r: The fault-blind rate to compare against (the ``R``
            you would have shipped without measuring).
        policy / retries / hedge_ms / seed / core: Fleet-replay knobs,
            as on :class:`~repro.fleet.engine.FleetSimulator`.  Note
            that fault-injected replays always need the per-event
            python core: ``core="auto"`` (the default) logs the
            fallback, ``core="vector"`` raises.
        percentile_mode: Report percentile machinery for every replay
            (``"exact"`` or ``"sketch"``).  The availability the search
            thresholds on is *exact* in both modes -- it is built from
            completion/failure counts and replica uptime, not from
            percentiles -- so sketch mode trades only report-percentile
            precision for O(models) replay memory on long traces.
        warmup_s: Replay warmup excluded from the statistics.
        r_min / r_max: Search bounds for ``R``.
        r_tol: Bisection width at which the search stops; the chosen
            ``R`` is at most this far above the true threshold.
        max_evals: Hard cap on fault-injected replays (excluding the
            baseline replay).
    """
    if not 0.0 < target_availability <= 1.0:
        raise ValueError("target_availability must be in (0, 1]")
    if r_min < 0.0 or r_max < r_min:
        raise ValueError("need 0 <= r_min <= r_max")
    if r_tol <= 0.0:
        raise ValueError("r_tol must be > 0")
    if max_evals < 2:
        raise ValueError("max_evals must be >= 2")
    if isinstance(trace, Iterator):
        # A one-shot stream cannot be replayed per candidate R;
        # re-iterable sources (lists, FleetArrivals, RecordedTrace)
        # pass through and are re-streamed by every evaluation.
        trace = list(trace)

    cache: dict[float, tuple[ProvisionEval, Allocation, FleetResult]] = {}
    replay_cache: dict[tuple, FleetResult] = {}
    order: list[ProvisionEval] = []

    def evaluate(r: float) -> ProvisionEval:
        if r in cache:
            return cache[r][0]
        allocation = scheduler.allocate(loads, over_provision=r)
        needed = faults.min_fleet_size()
        if allocation.total_servers < needed:
            # Index-targeted faults (crash@T:IDX, domain:LO-HI) name
            # concrete fleet positions, but the search sizes the fleet
            # per R -- fail actionably instead of deep in the replay.
            raise ValueError(
                f"fault schedule targets replica/domain positions needing "
                f">= {needed} replicas, but the allocation at R={r:.3f} has "
                f"only {allocation.total_servers}; use fleet-size-adaptive "
                "forms (domain:size=K, random:...) with the provisioning "
                "search, or raise the offered load / r_min"
            )
        # Nearby rates often integerize to the identical allocation;
        # its replay is deterministic, so price each allocation once.
        key = tuple(sorted(allocation.counts.items()))
        result = replay_cache.get(key)
        if result is None:
            servers = build_fleet(allocation, table, models, workloads)
            sim = FleetSimulator(
                servers,
                policy=policy,
                sla_ms=sla_ms,
                seed=seed,
                faults=faults,
                retries=retries,
                hedge_ms=hedge_ms,
                core=core,
                percentile_mode=percentile_mode,
            )
            result = sim.run(trace, warmup_s=warmup_s)
            replay_cache[key] = result
        avail = service_availability(result)
        ev = ProvisionEval(
            r=r,
            servers=allocation.total_servers,
            provisioned_power_w=allocation.provisioned_power_w(table),
            service_availability=avail,
            uptime_availability=result.availability,
            worst_violation_rate=result.worst_violation_rate,
            meets_target=avail >= target_availability,
            shortfall_qps=sum(allocation.shortfall.values()),
        )
        cache[r] = (ev, allocation, result)
        order.append(ev)
        return ev

    # The fault-blind point: what baseline_r actually delivers under
    # the measured fault behaviour (memoized into the search when the
    # bracketing happens to revisit it).
    base_ev = evaluate(baseline_r)
    _, base_alloc, base_result = cache[baseline_r]
    baseline_replays = len(replay_cache)

    def searched() -> int:
        """Fault-injected replays spent on the search proper."""
        return len(replay_cache) - baseline_replays

    hi = _search_min_r(
        evaluate, searched, r_min=r_min, r_max=r_max, r_tol=r_tol,
        max_evals=max_evals,
    )

    converged = hi is not None
    chosen_alloc = chosen_result = None
    chosen_power = 0.0
    standby_w = 0.0
    if converged:
        _, chosen_alloc, chosen_result = cache[hi]
        chosen_power = cache[hi][0].provisioned_power_w
        standby_w = standby_power_w(chosen_alloc, base_alloc, table)
    return FaultAwareProvisioning(
        target_availability=target_availability,
        converged=converged,
        chosen_r=hi,
        allocation=chosen_alloc,
        result=chosen_result,
        baseline_r=baseline_r,
        baseline_allocation=base_alloc,
        baseline_result=base_result,
        evaluations=tuple(order),
        replays=len(replay_cache),
        provisioned_power_w=chosen_power,
        baseline_power_w=base_ev.provisioned_power_w,
        standby_power_w=standby_w,
    )


# ----------------------------------------------------------------------
# Carbon-aware provisioning: the lowest-carbon fleet meeting a target
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CarbonPlanPoint:
    """One (policy, cap, horizon) point of the deferrable-plan sweep.

    Attributes:
        policy: Deferrable scheduling policy evaluated.
        power_cap_w: Fleet power cap the executor honored (None =
            uncapped).
        deferral_horizon_s: Cap on completion slip past each job's
            natural finish (None = deadline-bound only).
        completed / dropped / suspended: Terminal job counts.
        deferrable_g: Batch-job emissions of this plan (gCO2).
        feasible: Whether every submitted job completed -- only
            feasible points compete for the chosen plan.
    """

    policy: str
    power_cap_w: float | None
    deferral_horizon_s: float | None
    completed: int
    dropped: int
    suspended: int
    deferrable_g: float
    feasible: bool


@dataclass(frozen=True)
class CarbonAwareProvisioning:
    """Outcome of one carbon-aware provisioning search.

    Attributes:
        target_availability: The service-availability target.
        converged: Whether some evaluated ``R`` met the target.
        chosen_r: Smallest evaluated rate meeting the target (None when
            the search failed).
        allocation: The chosen allocation (None when not converged).
        result: The chosen allocation's replay with the winning
            deferrable plan's carbon accounting attached (None when not
            converged).
        evaluations: Every measured availability-vs-``R`` point, in
            evaluation order (``realtime carbon`` falls out of each
            replay's :class:`~repro.fleet.report.CarbonStats`).
        plan: Every (policy, cap, horizon) sweep point, in sweep order
            (empty when the run carried no deferrable jobs).
        chosen_plan: The feasible sweep point with the least batch
            emissions (None when no point was feasible or no jobs).
        no_wait_g: Batch emissions of the uncapped no-wait baseline --
            what running every job immediately would emit.
        replays: Fleet replays actually run (allocation-deduplicated).
        provisioned_power_w: Power budget of the chosen allocation.
    """

    target_availability: float
    converged: bool
    chosen_r: float | None
    allocation: Allocation | None
    result: FleetResult | None
    evaluations: tuple[ProvisionEval, ...]
    plan: tuple[CarbonPlanPoint, ...]
    chosen_plan: CarbonPlanPoint | None
    no_wait_g: float
    replays: int
    provisioned_power_w: float

    @property
    def total_g(self) -> float:
        """Fleet-wide emissions of the chosen operating point."""
        if self.result is None or self.result.carbon is None:
            return 0.0
        return self.result.carbon.total_g

    @property
    def deferral_savings_g(self) -> float:
        """Batch emissions avoided vs running every job immediately."""
        if self.chosen_plan is None:
            return 0.0
        return self.no_wait_g - self.chosen_plan.deferrable_g

    def format(self, title: str = "") -> str:
        """Render the R search, the plan sweep, and the verdict."""
        rows = [
            [
                f"{ev.r:.3f}",
                ev.servers,
                f"{ev.provisioned_power_w / 1e3:.2f}",
                f"{ev.service_availability * 100:.3f}%",
                f"{ev.worst_violation_rate * 100:.2f}%",
                "yes" if ev.meets_target else "no",
            ]
            for ev in self.evaluations
        ]
        table = format_table(
            ["R", "servers", "prov kW", "svc avail", "worst viol", "meets"],
            rows,
            title=title
            or (
                "carbon-aware provisioning "
                f"(target availability {self.target_availability * 100:.2f}%)"
            ),
        )
        lines = [table]
        if self.plan:
            plan_rows = [
                [
                    pt.policy,
                    "-" if pt.power_cap_w is None else f"{pt.power_cap_w / 1e3:.2f}",
                    "-" if pt.deferral_horizon_s is None else f"{pt.deferral_horizon_s:.0f}",
                    pt.completed,
                    pt.dropped,
                    f"{pt.deferrable_g:.2f}",
                    "yes" if pt.feasible else "no",
                ]
                for pt in self.plan
            ]
            lines.append(
                format_table(
                    ["policy", "cap kW", "horizon s", "done", "dropped", "gCO2", "feasible"],
                    plan_rows,
                    title="deferrable plan sweep",
                )
            )
        if not self.converged:
            lines.append(
                "did not converge: no evaluated R met the target "
                "(fleet exhausted or r_max reached)"
            )
            return "\n".join(lines)
        carbon = self.result.carbon
        lines.append(
            f"chosen R={self.chosen_r:.3f}: "
            f"{self.allocation.total_servers} servers, "
            f"{self.provisioned_power_w / 1e3:.2f} kW provisioned, "
            f"realtime {carbon.realtime_g:.2f} gCO2"
        )
        if self.chosen_plan is not None:
            pt = self.chosen_plan
            cap = "uncapped" if pt.power_cap_w is None else f"cap {pt.power_cap_w / 1e3:.2f} kW"
            horizon = (
                "deadline-bound"
                if pt.deferral_horizon_s is None
                else f"horizon {pt.deferral_horizon_s:.0f} s"
            )
            lines.append(
                f"chosen plan: {pt.policy} ({cap}, {horizon}) -- "
                f"{pt.completed} jobs at {pt.deferrable_g:.2f} gCO2, "
                f"{self.deferral_savings_g:+.2f} g saved vs no-wait "
                f"(total {carbon.total_g:.2f} gCO2)"
            )
        elif self.plan:
            lines.append(
                "no feasible deferrable plan: every sweep point dropped "
                "or suspended at least one job"
            )
        return "\n".join(lines)


def provision_carbon_aware(
    scheduler,
    table: "ClassificationTable",
    models: "dict[str, RecommendationModel]",
    workloads: "dict[str, QueryWorkload]",
    trace: Sequence[tuple[str, "Query"]],
    loads: dict[str, float],
    carbon: "CarbonTrace",
    *,
    sla_ms: dict[str, float],
    jobs: "Sequence[DeferrableJob]" = (),
    policies: Sequence[str] | None = None,
    power_caps: Sequence[float | None] = (None,),
    deferral_horizons: Sequence[float | None] = (None,),
    target_availability: float = 0.999,
    policy: str = "p2c",
    seed: int = 0,
    core: str = "auto",
    percentile_mode: str = "exact",
    warmup_s: float = 0.0,
    r_min: float = 0.0,
    r_max: float = 1.0,
    r_tol: float = 0.02,
    max_evals: int = 12,
) -> CarbonAwareProvisioning:
    """Find the lowest-carbon operating point meeting an availability.

    Two nested searches share one deterministic replay budget:

    1. **Fleet size.**  The :func:`provision_fault_aware` bracket-then-
       bisect core finds the smallest over-provision rate ``R`` whose
       fault-free replay meets ``target_availability`` -- the smallest
       fleet is the lowest-carbon fleet, because every additional
       replica burns energy at the same grid intensity.
    2. **Deferrable plan.**  On the chosen fleet's *measured*
       activation profile, every (policy, power cap, deferral horizon)
       combination from ``policies`` x ``power_caps`` x
       ``deferral_horizons`` is priced with the deferrable executor
       alone -- no further fleet replays -- and the feasible point
       (all jobs completed) with the least batch emissions wins.  Ties
       keep the earliest sweep point, so narrower policy lists and
       cap/horizon orders are stable knobs.

    Args mirror :func:`provision_fault_aware` where shared; new ones:

    Args:
        carbon: The grid carbon-intensity trace pricing every joule.
        jobs: Deferrable batch jobs to place (empty = realtime only).
        policies: Deferrable policies to sweep (default: all of
            :data:`~repro.carbon.DEFERRABLE_POLICIES`).
        power_caps: Fleet power caps (W) to sweep; None = uncapped.
        deferral_horizons: Deferral horizons (s) to sweep; None =
            deadline-bound only.
    """
    from repro.carbon.accounting import realtime_power_profile
    from repro.carbon.deferrable import DEFERRABLE_POLICIES, run_deferrable

    if policies is None:
        policies = DEFERRABLE_POLICIES
    for name in policies:
        if name not in DEFERRABLE_POLICIES:
            raise ValueError(
                f"unknown deferrable policy {name!r}; one of "
                f"{', '.join(DEFERRABLE_POLICIES)}"
            )
    if not 0.0 < target_availability <= 1.0:
        raise ValueError("target_availability must be in (0, 1]")
    if r_min < 0.0 or r_max < r_min:
        raise ValueError("need 0 <= r_min <= r_max")
    if r_tol <= 0.0:
        raise ValueError("r_tol must be > 0")
    if max_evals < 2:
        raise ValueError("max_evals must be >= 2")
    if isinstance(trace, Iterator):
        trace = list(trace)

    cache: dict[float, tuple[ProvisionEval, Allocation, FleetResult]] = {}
    replay_cache: dict[tuple, tuple[FleetResult, tuple, float]] = {}
    order: list[ProvisionEval] = []

    def evaluate(r: float) -> ProvisionEval:
        if r in cache:
            return cache[r][0]
        allocation = scheduler.allocate(loads, over_provision=r)
        key = tuple(sorted(allocation.counts.items()))
        entry = replay_cache.get(key)
        if entry is None:
            servers = build_fleet(allocation, table, models, workloads)
            sim = FleetSimulator(
                servers,
                policy=policy,
                sla_ms=sla_ms,
                seed=seed,
                core=core,
                percentile_mode=percentile_mode,
                carbon=carbon,
            )
            result = sim.run(trace, warmup_s=warmup_s)
            horizon = result.duration_s + warmup_s
            entry = (result, realtime_power_profile(servers), horizon)
            replay_cache[key] = entry
        result = entry[0]
        avail = service_availability(result)
        ev = ProvisionEval(
            r=r,
            servers=allocation.total_servers,
            provisioned_power_w=allocation.provisioned_power_w(table),
            service_availability=avail,
            uptime_availability=result.availability,
            worst_violation_rate=result.worst_violation_rate,
            meets_target=avail >= target_availability,
            shortfall_qps=sum(allocation.shortfall.values()),
        )
        cache[r] = (ev, allocation, result)
        order.append(ev)
        return ev

    hi = _search_min_r(
        evaluate, lambda: len(replay_cache), r_min=r_min, r_max=r_max,
        r_tol=r_tol, max_evals=max_evals,
    )

    converged = hi is not None
    chosen_alloc = chosen_result = None
    chosen_power = 0.0
    plan: list[CarbonPlanPoint] = []
    chosen_plan: CarbonPlanPoint | None = None
    no_wait_g = 0.0
    if converged:
        chosen_ev, chosen_alloc, chosen_result = cache[hi]
        chosen_power = chosen_ev.provisioned_power_w
        key = tuple(sorted(chosen_alloc.counts.items()))
        _, profile, horizon = replay_cache[key]
        if jobs:
            baseline = run_deferrable(
                jobs, carbon, policy="no-wait", horizon_s=horizon,
                realtime_profile=profile,
            )
            no_wait_g = baseline.total_gco2
            best_report = None
            for plc in policies:
                for cap in power_caps:
                    for dh in deferral_horizons:
                        report = run_deferrable(
                            jobs, carbon, policy=plc, horizon_s=horizon,
                            power_cap_w=cap, realtime_profile=profile,
                            deferral_horizon_s=dh,
                        )
                        point = CarbonPlanPoint(
                            policy=plc,
                            power_cap_w=cap,
                            deferral_horizon_s=dh,
                            completed=report.completed,
                            dropped=report.dropped,
                            suspended=report.suspended,
                            deferrable_g=report.total_gco2,
                            feasible=report.completed == report.submitted,
                        )
                        plan.append(point)
                        if point.feasible and (
                            chosen_plan is None
                            or point.deferrable_g < chosen_plan.deferrable_g
                        ):
                            chosen_plan = point
                            best_report = report
            if best_report is not None:
                # Re-price the chosen replay with the winning plan so
                # result.carbon reports the full operating point.
                carbon_stats = chosen_result.carbon
                chosen_result = dataclasses.replace(
                    chosen_result,
                    carbon=dataclasses.replace(
                        carbon_stats,
                        total_g=carbon_stats.realtime_g + best_report.total_gco2,
                        deferrable_g=best_report.total_gco2,
                        deferrable_energy_kwh=best_report.energy_kwh,
                        policy=best_report.policy,
                        power_cap_w=best_report.power_cap_w,
                        jobs_submitted=best_report.submitted,
                        jobs_completed=best_report.completed,
                        jobs_suspended=best_report.suspended,
                        jobs_dropped=best_report.dropped,
                        job_suspensions=best_report.suspension_events,
                    ),
                )
    return CarbonAwareProvisioning(
        target_availability=target_availability,
        converged=converged,
        chosen_r=hi,
        allocation=chosen_alloc,
        result=chosen_result,
        evaluations=tuple(order),
        plan=tuple(plan),
        chosen_plan=chosen_plan,
        no_wait_g=no_wait_g,
        replays=len(replay_cache),
        provisioned_power_w=chosen_power,
    )
