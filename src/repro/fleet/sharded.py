"""Sharded multi-process fleet replay with a seed-deterministic merge.

One process replays a few hundred thousand queries per second; a
day of traffic for millions of users (10⁸–10⁹ queries) needs
horizontal scale.  Per-model routing is already independent — each
model stream has its own replicas, its own policy instance, and its
own autoscaler decisions — so the fleet shards cleanly **by model**:
each worker process runs a full :class:`~repro.fleet.engine
.FleetSimulator` over its model subset, and the parent merges the
per-shard :class:`~repro.fleet.report.FleetResult` objects into the
report the single-process run would have produced.

The merge is *bit-identical* in exact percentile mode (pinned by
``tests/test_fleet_sharded.py`` and asserted inside the
``fleet_replay_sharded`` perfbench scenario), which rests on three
invariants:

- **Seed lanes.**  :class:`~repro.traces.FleetArrivals` streams model
  ``m`` with ``seed + stride * sorted_index(m)``; workers rebuild
  their sub-stream with explicit per-model ``seeds=`` pinned to the
  *fleet-wide* sorted index, so every model draws the same arrivals it
  would in one process.  Routing policies are reseeded the same way
  (``seed + global_sorted_index``).
- **A shared horizon.**  The measurement horizon is the fleet-wide
  last arrival.  Each shard's own stream ends earlier, so workers run
  with ``FleetSimulator.run(horizon_s=...)`` forcing the global
  horizon: qps denominators, active-time/power accounting, and
  autoscaler tick chains all cover the identical window.
- **Ordered reduction.**  Per-model stats pass through untouched
  (each model lives wholly in one shard).  Replica rows are re-indexed
  to their fleet-wide build order and fleet energy re-accumulated in
  that order (float addition order matters).  Scale-event timelines
  interleave by ``(time, autoscaler model order)`` — exactly the order
  one process's tick loop emits them.

Limitations (all raise actionable errors): fault injection, retries,
hedging, and observers couple shards (cross-model dead domains,
shared query logs) and are not supported — run those single-process,
optionally with ``percentile_mode="sketch"`` for the memory ceiling.
"""

from __future__ import annotations

import dataclasses
import logging
import os
from dataclasses import dataclass

from repro.cluster.state import Allocation
from repro.fleet.engine import FleetSimulator, build_fleet
from repro.fleet.report import FleetResult, fleet_power_summary
from repro.fleet.routing import RoutingPolicy, make_policy
from repro.traces.arrivals import MODEL_SEED_STRIDE, FleetArrivals
from repro.traces.recorded import RecordedTrace

_LOG = logging.getLogger(__name__)

__all__ = ["run_fleet_sharded", "merge_shard_results", "plan_shards"]


@dataclass(frozen=True)
class _ReplicaRef:
    """Light stand-in for a worker's ``FleetServer`` in scale events.

    Workers translate their local replica objects to fleet-global
    references before results cross the process boundary (the live
    server objects hold pipelines and owner back-references that have
    no business being pickled).  Carries exactly what reports read:
    the fleet index and the model name.
    """

    index: int
    model_name: str


class _FilteredSource:
    """Re-iterable view of a fleet arrival source restricted to models.

    Used for sources without native per-model decomposition (e.g.
    :class:`~repro.traces.RecordedTrace`): each worker streams the full
    file and keeps its shard's rows.  Order is preserved, so the
    sub-stream is sorted whenever the source is.
    """

    def __init__(self, source, models: frozenset) -> None:
        self.source = source
        self.models = models

    def __iter__(self):
        models = self.models
        return ((m, q) for m, q in iter(self.source) if m in models)


def plan_shards(models: list[str], shards: int) -> list[list[str]]:
    """Deterministic model → shard assignment (round-robin over the
    sorted model list, clamped to at most one shard per model)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    names = sorted(models)
    shards = min(shards, len(names))
    plan: list[list[str]] = [[] for _ in range(shards)]
    for i, name in enumerate(names):
        plan[i % shards].append(name)
    return plan


def _source_models_and_horizon(source):
    """The source's model set and, when knowable without a draw, the
    fleet-wide last arrival (``None`` means phase A must discover it)."""
    if isinstance(source, FleetArrivals):
        return list(source.processes), None
    if isinstance(source, RecordedTrace):
        return list(source.models()), source.end_s
    if isinstance(source, (list, tuple)):
        if not source:
            raise ValueError("empty fleet trace")
        names = sorted({m for m, _ in source})
        return names, max(q.arrival_s for _, q in source)
    if iter(source) is source:
        raise ValueError(
            "sharded replay needs a re-iterable arrival source "
            "(FleetArrivals, RecordedTrace, or a materialized list); "
            "a bare iterator can only be consumed once"
        )
    seen: set = set()
    last = None
    for m, q in source:
        seen.add(m)
        t = q.arrival_s
        if last is None or t > last:
            last = t
    if last is None:
        raise ValueError("empty fleet trace")
    return sorted(seen), last


def _sub_source(source, shard_models: frozenset):
    """The shard's view of the arrival source (seed lanes preserved)."""
    if isinstance(source, FleetArrivals):
        procs = {m: p for m, p in source.processes.items() if m in shard_models}
        if not procs:
            return ()
        lanes = {
            m: source.seed + MODEL_SEED_STRIDE * i
            for i, m in enumerate(source.processes)
        }
        if source.seeds is not None:
            lanes = dict(source.seeds)
        return FleetArrivals(
            procs, seed=source.seed, seeds={m: lanes[m] for m in procs}
        )
    if isinstance(source, (list, tuple)):
        return [pair for pair in source if pair[0] in shard_models]
    return _FilteredSource(source, shard_models)


def _sub_allocation(allocation, shard_models: frozenset):
    if allocation is None:
        return None
    counts = {
        (srv, model): count
        for (srv, model), count in allocation.counts.items()
        if model in shard_models
    }
    return Allocation(counts=counts)


def _global_rows(allocation, standby):
    """Replica (server type, model) rows in ``build_fleet`` order —
    the fleet-global index space workers re-index into."""
    rows: list[tuple[str, str]] = []
    for alloc in (allocation, standby):
        if alloc is None:
            continue
        for (srv, model), count in sorted(alloc.counts.items()):
            rows.extend([(srv, model)] * count)
    return rows


def _scan_shard_task(source) -> float | None:
    """Phase A pool task: the shard's last arrival (its streams are
    time-sorted, so the last element is the max)."""
    last = None
    for _model, q in source:
        last = q.arrival_s
    return last


def _run_shard_task(task: tuple):
    """Phase B pool task: simulate one shard against the global horizon.

    Returns ``(FleetResult, ticks)`` with replica rows and scale-event
    targets already translated to fleet-global indices.  A shard whose
    sub-stream drew no arrivals still accounts its idle replicas over
    the full window, exactly as the single-process run would.
    """
    (
        allocation,
        standby,
        table,
        models,
        workloads,
        source,
        policy,
        sla_ms,
        autoscaler,
        seed,
        policy_seeds,
        percentile_mode,
        core,
        warmup_s,
        horizon,
        global_indices,
    ) = task
    servers = build_fleet(allocation, table, models, workloads, standby=standby)
    sim = FleetSimulator(
        servers,
        policy=policy,
        sla_ms=sla_ms,
        autoscaler=autoscaler,
        seed=seed,
        core=core,
        percentile_mode=percentile_mode,
    )
    # The parent already logged the auto-core fallback once for the
    # whole run; don't repeat it from every worker.
    sim._quiet_core_fallback = True
    # Reseed each model's policy to its fleet-wide sorted index: the
    # engine numbered them within the shard.
    for model in sim._policies:
        sim._policies[model] = make_policy(policy, seed=policy_seeds[model])
    try:
        result = sim.run(source, warmup_s=warmup_s, horizon_s=horizon)
        ticks = sim.last_tick_count
    except ValueError as exc:
        if "empty fleet trace" not in str(exc):
            raise
        # No arrivals for this shard's models: replicas idle through
        # the whole window (active_s = horizon, zero completions).
        for s in sim.servers:
            s.settle(horizon)
        completions: dict = {m: [] for m in sim._routable}
        result = sim._summarize(
            completions,
            {m: 0 for m in completions},
            warmup_s,
            horizon,
            (),
            None,
        )
        ticks = 0
    gmap = dict(enumerate(global_indices))
    rows = tuple(
        dataclasses.replace(row, index=gmap[row.index], domain=gmap[row.index])
        for row in result.servers
    )
    events = tuple(
        dataclasses.replace(
            ev,
            server=_ReplicaRef(gmap[ev.server.index], ev.server.model_name),
        )
        for ev in result.scale_events
    )
    return dataclasses.replace(result, servers=rows, scale_events=events), ticks


def merge_shard_results(
    payloads: list[tuple[FleetResult, int]],
    horizon: float,
    model_order: list[str],
) -> FleetResult:
    """Seed-deterministic reduction of per-shard results.

    ``model_order`` is the autoscaler's model iteration order (its
    ``sla_ms`` insertion order) — the order one process's tick emits
    same-timestamp scale events across models.
    """
    results = [r for r, _ in payloads]
    ticks = max(t for _, t in payloads)
    per_model: dict = {}
    for r in results:
        per_model.update(r.per_model)
    rows = sorted(
        (row for r in results for row in r.servers), key=lambda s: s.index
    )
    # Re-accumulate fleet energy in global index order: float addition
    # order is part of the bit-identity contract.
    _, avg_power_w = fleet_power_summary(
        ((row.power_w, row.active_s) for row in rows), horizon
    )
    rank = {m: i for i, m in enumerate(model_order)}
    scale_events = sorted(
        (ev for r in results for ev in r.scale_events),
        key=lambda ev: (ev.time_s, rank.get(ev.model, 0)),
    )
    return FleetResult(
        policy=results[0].policy,
        duration_s=results[0].duration_s,
        per_model=per_model,
        servers=tuple(rows),
        avg_power_w=avg_power_w,
        scale_events=tuple(scale_events),
        events=sum(r.events - t for r, t in payloads) + ticks,
        availability=1.0,
        fault_events=(),
        phases=(),
    )


def run_fleet_sharded(
    allocation,
    table,
    models: dict,
    workloads: dict | None,
    source,
    *,
    shards: int,
    policy: str = "p2c",
    sla_ms: dict | None = None,
    autoscaler=None,
    seed: int = 0,
    percentile_mode: str = "exact",
    warmup_s: float = 0.0,
    standby=None,
    core: str = "auto",
    max_workers: int | None = None,
) -> FleetResult:
    """Replay a fleet sharded by model across a process pool.

    Same inputs :func:`~repro.fleet.engine.build_fleet` +
    :class:`FleetSimulator` take, minus fault machinery (unsupported
    sharded — see the module docstring).  ``shards=1`` runs inline in
    this process (no pool, no horizon forcing) and is the reference
    the merge is tested against.

    Two phases: (A) workers draw their shard's arrival stream once to
    find the fleet-wide last arrival (skipped when the source already
    knows it, e.g. a recorded trace); (B) workers simulate against
    that shared horizon and the parent merges
    (:func:`merge_shard_results`).

    Args:
        allocation / standby: Active and standby replica allocations.
        table: Offline profiler classification table.
        models / workloads: Model zoo entries and query workloads.
        source: Re-iterable fleet arrival source.
        shards: Worker process count (clamped to the model count).
        policy: Routing policy *name* (instances hold per-stream state
            and cannot cross process boundaries).
        autoscaler: Optional pristine autoscaler; each worker gets its
            own copy, ticking only its shard's models (decisions are
            per-model, so the union matches the fleet-wide run).
        percentile_mode: ``"exact"`` (bit-identical merge) or
            ``"sketch"`` (O(models) report memory; see the engine).
        max_workers: Pool size cap (defaults to ``min(shards, cpus)``).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if isinstance(policy, RoutingPolicy):
        raise ValueError(
            "sharded replay needs a policy name, not an instance: "
            "policies hold per-stream state that cannot be split "
            "across worker processes"
        )
    if core in ("vector", "vector-epoch"):
        raise ValueError(
            "sharded workers run against a forced fleet-wide horizon, "
            "which requires the per-event core; use core='auto' or "
            "core='python'"
        )
    sla_ms = dict(sla_ms or {})

    if shards == 1:
        servers = build_fleet(allocation, table, models, workloads, standby=standby)
        sim = FleetSimulator(
            servers,
            policy=policy,
            sla_ms=sla_ms,
            autoscaler=autoscaler,
            seed=seed,
            core=core,
            percentile_mode=percentile_mode,
        )
        return sim.run(source, warmup_s=warmup_s)

    if core != "python":
        # Logged once here for the whole run; workers are quieted.
        _LOG.info(
            "core='auto': sharded workers fall back to the python event "
            "core (a forced fleet-wide measurement horizon requires "
            "per-event accounting)"
        )

    rows = _global_rows(allocation, standby)
    if not rows:
        raise ValueError("need at least one fleet server")
    source_models, horizon = _source_models_and_horizon(source)
    server_models = sorted({model for _, model in rows})
    all_models = sorted(set(server_models) | set(source_models))
    policy_seeds = {m: seed + i for i, m in enumerate(server_models)}
    plan = plan_shards(all_models, shards)
    # Every shard must own at least one replica (the engine refuses an
    # empty fleet).  Models with no replica anywhere still need an
    # owner so their arrivals are counted as drops — fold replica-less
    # groups into the first group that has replicas, exactly the drop
    # accounting the single-process run performs.
    server_model_set = set(server_models)
    with_replicas = [g for g in plan if server_model_set & set(g)]
    orphans = [m for g in plan if not (server_model_set & set(g)) for m in g]
    if not with_replicas:
        raise ValueError("need at least one fleet server")
    if orphans:
        with_replicas[0] = with_replicas[0] + orphans
    shard_sets = [frozenset(g) for g in with_replicas]

    tasks = []
    for group in shard_sets:
        sub_alloc = _sub_allocation(allocation, group)
        sub_standby = _sub_allocation(standby, group)
        if sub_standby is not None and not sub_standby.counts:
            sub_standby = None
        global_indices = [
            i for i, (_, model) in enumerate(rows) if model in group
        ]
        tasks.append(
            [
                sub_alloc,
                sub_standby,
                table,
                {m: models[m] for m in group if m in models},
                {m: (workloads or {}).get(m) for m in group} if workloads else None,
                _sub_source(source, group),
                policy,
                {m: sla_ms[m] for m in group if m in sla_ms},
                autoscaler,
                seed,
                {m: policy_seeds[m] for m in group if m in policy_seeds},
                percentile_mode,
                core,
                warmup_s,
                None,  # horizon, filled below
                global_indices,
            ]
        )

    from concurrent.futures import ProcessPoolExecutor

    workers = min(len(tasks), max_workers or os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if horizon is None:
            lasts = list(pool.map(_scan_shard_task, [t[5] for t in tasks]))
            known = [t for t in lasts if t is not None]
            if not known:
                raise ValueError("empty fleet trace")
            horizon = max(known)
        for t in tasks:
            t[14] = horizon
        payloads = list(pool.map(_run_shard_task, [tuple(t) for t in tasks]))

    model_order = list(autoscaler.sla_ms) if autoscaler is not None else []
    return merge_shard_results(payloads, horizon, model_order)
