"""Pluggable load-balancing policies for the fleet simulator.

Each model's query stream is routed over the replicas currently serving
that model.  Policies range from the oblivious (round-robin) through
the queue-aware (least-outstanding, power-of-two-choices) to the
heterogeneity-aware (smooth weighted round-robin over each replica's
profiled latency-bounded throughput) -- the spread lets the fleet
benches quantify how much routing quality buys in tail latency on a
heterogeneous cluster, the request-level complement of the paper's
provisioning comparison.

A policy instance is per-model (its internal state -- cursors, RNG,
smoothing weights -- must not leak across query streams); build them
through :func:`make_policy`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.fleet.engine import FleetServer

__all__ = [
    "RoutingError",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "PowerOfTwoPolicy",
    "WeightedPolicy",
    "ROUTING_POLICIES",
    "make_policy",
    "prefer_other_domains",
]


class RoutingError(RuntimeError):
    """No routable replica exists for a query (e.g. all replicas down).

    Policies raise this instead of an opaque ``IndexError`` /
    ``ZeroDivisionError`` so callers can distinguish "the fleet has no
    capacity for this stream right now" from a programming error.  The
    fleet engine checks for emptiness before routing (such queries are
    dropped or failed, not raised), so this surfaces only to direct API
    users.
    """


class RoutingPolicy:
    """Chooses a replica for each arriving query of one model."""

    name = "base"

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through replicas regardless of their speed or backlog."""

    name = "rr"

    def __init__(self, seed: int = 0) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        pick = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return pick


class LeastOutstandingPolicy(RoutingPolicy):
    """Send to the replica with the fewest in-flight queries.

    Ties break toward the higher-throughput replica, so a fast and a
    slow empty server are not treated as equals.
    """

    name = "least"

    def __init__(self, seed: int = 0) -> None:
        pass

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        # Manual argmin over (outstanding, -weight): same pick as
        # min(key=...) -- first minimum wins -- without building a key
        # tuple per replica on the per-arrival hot path.
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        best = candidates[0]
        best_out = best.outstanding
        best_w = best.weight
        for server in candidates:
            out = server.outstanding
            if out < best_out or (out == best_out and server.weight > best_w):
                best = server
                best_out = out
                best_w = server.weight
        return best


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two replicas, send to the less-loaded one.

    The classic O(1) approximation of least-outstanding: most of the
    tail benefit at a fraction of the bookkeeping.
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._random = self._rng.random

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        # Indices come from the C-level ``random()`` instead of
        # ``randrange`` (which loops in Python): routing is the fleet's
        # per-arrival hot path.  Still uniform and seed-deterministic;
        # the guard covers the half-ulp case where ``r * n`` rounds up.
        n = len(candidates)
        if n == 1:
            return candidates[0]
        if n == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        rand = self._random
        i = int(rand() * n)
        j = int(rand() * n)
        a = candidates[i if i < n else n - 1]
        b = candidates[j if j < n else n - 1]
        b_out = b.outstanding
        a_out = a.outstanding
        if b_out < a_out or (b_out == a_out and b.weight > a.weight):
            return b
        return a


class WeightedPolicy(RoutingPolicy):
    """Smooth weighted round-robin by profiled throughput.

    Heterogeneity-aware but backlog-oblivious: each replica receives
    queries in proportion to its latency-bounded throughput (a T7 GPU
    box absorbs a multiple of a T2's stream).  Uses the nginx smooth
    WRR scheme, which interleaves picks instead of bursting them.
    """

    name = "weighted"

    def __init__(self, seed: int = 0) -> None:
        pass

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        total = 0.0
        best = candidates[0]
        for server in candidates:
            weight = max(server.weight, 1e-9)
            server.wrr_current += weight
            total += weight
            if server.wrr_current > best.wrr_current:
                best = server
        best.wrr_current -= total
        return best


def prefer_other_domains(
    candidates: Sequence["FleetServer"], attempted_domains: set
) -> Sequence["FleetServer"]:
    """Filter ``candidates`` to replicas outside the attempted fault domains.

    Used by hedged dispatch: the duplicate attempt should land in a
    fault domain the query has not touched, so one correlated rack or
    power-domain failure cannot kill both attempts.  Falls back to the
    unfiltered candidates when every live replica shares an attempted
    domain -- a same-domain hedge still beats no hedge.  When no fault
    domains are declared every replica is its own singleton domain and
    the filter returns ``candidates`` element-for-element, keeping
    hedge placement (and its policy RNG draws) unchanged.
    """
    fresh = [s for s in candidates if s.domain not in attempted_domains]
    return fresh or candidates


#: Policy registry: CLI/bench names -> constructor taking a seed.
ROUTING_POLICIES: dict[str, Callable[[int], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastOutstandingPolicy.name: LeastOutstandingPolicy,
    PowerOfTwoPolicy.name: PowerOfTwoPolicy,
    WeightedPolicy.name: WeightedPolicy,
}


def make_policy(name: str, seed: int = 0) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        factory = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(ROUTING_POLICIES)}"
        ) from None
    return factory(seed)
