"""Pluggable load-balancing policies for the fleet simulator.

Each model's query stream is routed over the replicas currently serving
that model.  Policies range from the oblivious (round-robin) through
the queue-aware (least-outstanding, power-of-two-choices) to the
heterogeneity-aware (smooth weighted round-robin over each replica's
profiled latency-bounded throughput) -- the spread lets the fleet
benches quantify how much routing quality buys in tail latency on a
heterogeneous cluster, the request-level complement of the paper's
provisioning comparison.

A policy instance is per-model (its internal state -- cursors, RNG,
smoothing weights -- must not leak across query streams); build them
through :func:`make_policy`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

try:  # optional: vectorized choose_batch fast paths
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

if TYPE_CHECKING:
    from repro.fleet.engine import FleetServer

__all__ = [
    "RoutingError",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "PowerOfTwoPolicy",
    "WeightedPolicy",
    "ROUTING_POLICIES",
    "make_policy",
    "prefer_other_domains",
]


class RoutingError(RuntimeError):
    """No routable replica exists for a query (e.g. all replicas down).

    Policies raise this instead of an opaque ``IndexError`` /
    ``ZeroDivisionError`` so callers can distinguish "the fleet has no
    capacity for this stream right now" from a programming error.  The
    fleet engine checks for emptiness before routing (such queries are
    dropped or failed, not raised), so this surfaces only to direct API
    users.
    """


class RoutingPolicy:
    """Chooses a replica for each arriving query of one model."""

    name = "base"

    #: Whether ``choose`` ignores live queue depth (``outstanding``).
    #: Oblivious policies (rr, weighted) route a whole arrival segment
    #: identically whether or not completions interleave, which is what
    #: lets the vectorized fast core pre-route batches; queue-aware
    #: policies (least, p2c) force the exact per-event engine.
    outstanding_oblivious = False

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        raise NotImplementedError

    def choose_batch(self, candidates: Sequence["FleetServer"], n: int):
        """Route ``n`` consecutive arrivals; returns indices into ``candidates``
        (a list or, where an override vectorizes, a numpy integer array).

        The default loops :meth:`choose`, recovering each pick's
        position by identity -- exact for any policy, but only
        *meaningful* when the policy is outstanding-oblivious (the loop
        sees a frozen queue-depth snapshot; no completions interleave).
        Subclasses override it to hoist per-call overhead -- sequence
        length lookups, RNG method binds, weight reads -- out of the
        per-query path.
        """
        pos = {id(s): i for i, s in enumerate(candidates)}
        choose = self.choose
        return [pos[id(choose(candidates))] for _ in range(n)]

    def snapshot_batch(
        self, candidates: Sequence["FleetServer"], outstanding: list[int], n: int
    ):
        """Route ``n`` arrivals against an epoch queue-depth snapshot.

        ``outstanding`` is a caller-owned list aligned with
        ``candidates``: the in-flight count of each replica as of the
        epoch start.  Queue-aware policies override this to read the
        snapshot (incrementing it in place per pick, so arrivals inside
        one epoch still see each other); the base implementation simply
        delegates to :meth:`choose_batch`, which is correct for
        outstanding-oblivious policies -- the snapshot cannot change
        their picks.  Used by the ``core="vector-epoch"`` fleet runner
        (see ``docs/performance.md``).
        """
        return self.choose_batch(candidates, n)


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through replicas regardless of their speed or backlog."""

    name = "rr"
    outstanding_oblivious = True

    def __init__(self, seed: int = 0) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        pick = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return pick

    def choose_batch(self, candidates: Sequence["FleetServer"], n: int):
        """Pure cursor arithmetic: pick ``i`` is ``(cursor + i) % k``."""
        k = len(candidates)
        if not k:
            raise RoutingError("no routable replicas (all replicas down?)")
        cursor = self._cursor
        self._cursor = cursor + n
        if _np is not None:
            return (cursor + _np.arange(n)) % k
        return [(cursor + i) % k for i in range(n)]


class LeastOutstandingPolicy(RoutingPolicy):
    """Send to the replica with the fewest in-flight queries.

    Ties break toward the higher-throughput replica, so a fast and a
    slow empty server are not treated as equals.
    """

    name = "least"

    def __init__(self, seed: int = 0) -> None:
        pass

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        # Manual argmin over (outstanding, -weight): same pick as
        # min(key=...) -- first minimum wins -- without building a key
        # tuple per replica on the per-arrival hot path.  The scan
        # starts past the seeded first candidate and only touches a
        # replica's ``weight`` on an outstanding tie, so the common
        # no-tie arrival costs one attribute read per replica.
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        it = iter(candidates)
        best = next(it)
        best_out = best.outstanding
        best_w = best.weight
        for server in it:
            out = server.outstanding
            if out < best_out:
                best = server
                best_out = out
                best_w = server.weight
            elif out == best_out:
                w = server.weight
                if w > best_w:
                    best = server
                    best_w = w
        return best

    def choose_batch(self, candidates: Sequence["FleetServer"], n: int) -> list[int]:
        """Batched least-outstanding with the argmin scan kept local.

        Shares :meth:`choose`'s frozen-snapshot caveat; the sequence
        length and attribute reads of the running minimum are hoisted
        out of the per-query path.
        """
        k = len(candidates)
        if k == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        out = []
        append = out.append
        rng = range(k)
        for _ in range(n):
            best_i = 0
            best = candidates[0]
            best_out = best.outstanding
            best_w = best.weight
            for i in rng:
                server = candidates[i]
                o = server.outstanding
                if o < best_out or (o == best_out and server.weight > best_w):
                    best_i = i
                    best_out = o
                    best_w = server.weight
            append(best_i)
        return out

    def snapshot_batch(
        self, candidates: Sequence["FleetServer"], outstanding: list[int], n: int
    ) -> list[int]:
        """Epoch-batched least-outstanding over a local snapshot.

        The argmin runs over the caller's ``outstanding`` list instead
        of live replica attributes; each pick increments its slot in
        place, so arrivals within one epoch observe each other while
        completions are only folded in at epoch boundaries.  Weights
        are read once per epoch.
        """
        k = len(candidates)
        if k == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        if _np is not None and 256 <= n * k <= 2_000_000:
            # Sequential argmin over a snapshot that only ever grows by
            # its own picks is a k-way merge: replica ``i``'s ``t``-th
            # assignment carries key ``(outstanding[i] + t, rank_i)``
            # (rank orders the weight-desc/index-asc tie-break), heads
            # only increase, so the first ``n`` keys of the sorted
            # union ARE the pick sequence -- computed here without the
            # per-pick python scan.
            order = sorted(
                range(k), key=lambda i: (-candidates[i].weight, i)
            )
            rank = [0] * k
            for r, i in enumerate(order):
                rank[i] = r
            levels = _np.asarray(outstanding, dtype=_np.int64)[:, None] + (
                _np.arange(n, dtype=_np.int64)[None, :]
            )
            enc = (
                levels * k + _np.asarray(rank, dtype=_np.int64)[:, None]
            ).ravel()
            take = _np.argpartition(enc, n - 1)[:n]
            take = take[_np.argsort(enc[take], kind="stable")]
            picks = take // n
            for i, c in enumerate(
                _np.bincount(picks, minlength=k).tolist()
            ):
                if c:
                    outstanding[i] += c
            return picks
        weights = [s.weight for s in candidates]
        out = outstanding
        picks_l: list[int] = []
        append = picks_l.append
        tail = range(1, k)
        for _ in range(n):
            best = 0
            best_out = out[0]
            best_w = weights[0]
            for i in tail:
                o = out[i]
                if o < best_out:
                    best = i
                    best_out = o
                    best_w = weights[i]
                elif o == best_out and weights[i] > best_w:
                    best = i
                    best_w = weights[i]
            out[best] = best_out + 1
            append(best)
        return picks_l


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two replicas, send to the less-loaded one.

    The classic O(1) approximation of least-outstanding: most of the
    tail benefit at a fraction of the bookkeeping.
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._random = self._rng.random

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        # Indices come from the C-level ``random()`` instead of
        # ``randrange`` (which loops in Python): routing is the fleet's
        # per-arrival hot path.  Still uniform and seed-deterministic;
        # the guard covers the half-ulp case where ``r * n`` rounds up.
        n = len(candidates)
        if n == 1:
            return candidates[0]
        if n == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        rand = self._random
        i = int(rand() * n)
        j = int(rand() * n)
        if i >= n:
            i = n - 1
        if j >= n:
            j = n - 1
        a = candidates[i]
        if i == j:
            # Same replica drawn twice: comparing it to itself always
            # returns it, so skip the queue-depth reads entirely.
            return a
        b = candidates[j]
        b_out = b.outstanding
        a_out = a.outstanding
        if b_out < a_out or (b_out == a_out and b.weight > a.weight):
            return b
        return a

    def choose_batch(self, candidates: Sequence["FleetServer"], n: int) -> list[int]:
        """Batched p2c with the length lookup and RNG bind hoisted.

        ``len(candidates)`` and the ``Random.random`` method bind happen
        once per batch instead of once per query.  Queue-aware like
        :meth:`choose`, so picks reflect a frozen ``outstanding``
        snapshot -- callers that interleave completions must stay on the
        scalar path (the fleet engine does; see ``outstanding_oblivious``).
        """
        k = len(candidates)
        if k == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        if k == 1:
            return [0] * n
        rand = self._random
        out = []
        append = out.append
        for _ in range(n):
            i = int(rand() * k)
            j = int(rand() * k)
            if i >= k:
                i = k - 1
            if j >= k:
                j = k - 1
            a = candidates[i]
            b = candidates[j]
            b_out = b.outstanding
            a_out = a.outstanding
            if b_out < a_out or (b_out == a_out and b.weight > a.weight):
                append(j)
            else:
                append(i)
        return out

    def snapshot_batch(
        self, candidates: Sequence["FleetServer"], outstanding: list[int], n: int
    ) -> list[int]:
        """Epoch-batched p2c: two draws compared on the snapshot list.

        Seed-deterministic (the same ``Random`` stream as the scalar
        path, though the pick *sequence* differs because queue depths
        are only refreshed at epoch boundaries); each pick increments
        its snapshot slot so intra-epoch arrivals pile up realistically
        instead of all landing on the epoch-start minimum.
        """
        k = len(candidates)
        if k == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        out = outstanding
        if k == 1:
            out[0] += n
            return [0] * n
        rand = self._random
        weights = [s.weight for s in candidates]
        picks: list[int] = []
        append = picks.append
        for _ in range(n):
            i = int(rand() * k)
            j = int(rand() * k)
            if i >= k:
                i = k - 1
            if j >= k:
                j = k - 1
            if i != j:
                o_i = out[i]
                o_j = out[j]
                if o_j < o_i or (o_j == o_i and weights[j] > weights[i]):
                    i = j
            out[i] += 1
            append(i)
        return picks


class WeightedPolicy(RoutingPolicy):
    """Smooth weighted round-robin by profiled throughput.

    Heterogeneity-aware but backlog-oblivious: each replica receives
    queries in proportion to its latency-bounded throughput (a T7 GPU
    box absorbs a multiple of a T2's stream).  Uses the nginx smooth
    WRR scheme, which interleaves picks instead of bursting them.
    """

    name = "weighted"
    outstanding_oblivious = True

    def __init__(self, seed: int = 0) -> None:
        pass

    def choose(self, candidates: Sequence["FleetServer"]) -> "FleetServer":
        if not candidates:
            raise RoutingError("no routable replicas (all replicas down?)")
        total = 0.0
        best = candidates[0]
        for server in candidates:
            weight = max(server.weight, 1e-9)
            server.wrr_current += weight
            total += weight
            if server.wrr_current > best.wrr_current:
                best = server
        best.wrr_current -= total
        return best

    def choose_batch(self, candidates: Sequence["FleetServer"], n: int) -> list[int]:
        """Smooth-WRR over local credit lists, written back once.

        Replays :meth:`choose`'s float sequence exactly -- same clamped
        weights added in the same order, same strict-``>`` argmax over
        already-updated credits, same ``total`` subtraction -- but the
        weights are clamped once per batch and the per-server
        ``wrr_current`` attribute traffic happens at the boundaries
        instead of per query.
        """
        k = len(candidates)
        if k == 0:
            raise RoutingError("no routable replicas (all replicas down?)")
        weights = [max(s.weight, 1e-9) for s in candidates]
        credits = [s.wrr_current for s in candidates]
        # choose() accumulates `total` per call in candidate order; the
        # candidate set is frozen across the batch, so the sum is the
        # same float every iteration.
        total = 0.0
        for w in weights:
            total += w
        out = []
        append = out.append
        rng = range(k)
        for _ in range(n):
            best = 0
            for i in rng:
                credits[i] += weights[i]
                if credits[i] > credits[best]:
                    best = i
            credits[best] -= total
            append(best)
        for server, credit in zip(candidates, credits):
            server.wrr_current = credit
        return out


def prefer_other_domains(
    candidates: Sequence["FleetServer"], attempted_domains: set
) -> Sequence["FleetServer"]:
    """Filter ``candidates`` to replicas outside the attempted fault domains.

    Used by hedged dispatch: the duplicate attempt should land in a
    fault domain the query has not touched, so one correlated rack or
    power-domain failure cannot kill both attempts.  Falls back to the
    unfiltered candidates when every live replica shares an attempted
    domain -- a same-domain hedge still beats no hedge.  When no fault
    domains are declared every replica is its own singleton domain and
    the filter returns ``candidates`` element-for-element, keeping
    hedge placement (and its policy RNG draws) unchanged.
    """
    fresh = [s for s in candidates if s.domain not in attempted_domains]
    return fresh or candidates


#: Policy registry: CLI/bench names -> constructor taking a seed.
ROUTING_POLICIES: dict[str, Callable[[int], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastOutstandingPolicy.name: LeastOutstandingPolicy,
    PowerOfTwoPolicy.name: PowerOfTwoPolicy,
    WeightedPolicy.name: WeightedPolicy,
}


def make_policy(name: str, seed: int = 0) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        factory = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(ROUTING_POLICIES)}"
        ) from None
    return factory(seed)
