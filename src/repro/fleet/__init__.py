"""Request-level fleet serving simulation (routing, autoscaling, SLA).

The cluster layer (:mod:`repro.cluster`) decides *how many* servers of
each type run each model; this package replays those decisions at query
granularity: one discrete-event stage pipeline per provisioned replica,
a pluggable per-model routing policy, an optional reactive autoscaler,
and measured p50/p99/SLA-violation/power accounting -- the repo's
equivalent of the paper's load-generator evaluation (Fig. 13).
"""

from repro.fleet.autoscaler import (
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    ScaleEvent,
)
from repro.fleet.engine import (
    FleetServer,
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    diurnal_segments,
)
from repro.fleet.faults import (
    DomainFaultEvent,
    FaultDomains,
    FaultEvent,
    FaultSchedule,
    crash,
    domain_crash,
    domain_slowdown,
    slowdown,
)
from repro.fleet.provisioning import (
    CarbonAwareProvisioning,
    CarbonPlanPoint,
    FaultAwareProvisioning,
    ProvisionEval,
    provision_carbon_aware,
    provision_fault_aware,
    service_availability,
)
from repro.fleet.report import (
    CarbonStats,
    FleetResult,
    ModelStats,
    PhaseStats,
    ServerStats,
    fleet_power_summary,
)
from repro.fleet.routing import (
    ROUTING_POLICIES,
    LeastOutstandingPolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingError,
    RoutingPolicy,
    WeightedPolicy,
    make_policy,
    prefer_other_domains,
)

__all__ = [
    "PredictiveAutoscaler",
    "ReactiveAutoscaler",
    "ScaleEvent",
    "FleetServer",
    "FleetSimulator",
    "build_fleet",
    "build_fleet_trace",
    "diurnal_segments",
    "DomainFaultEvent",
    "FaultDomains",
    "FaultEvent",
    "FaultSchedule",
    "crash",
    "domain_crash",
    "domain_slowdown",
    "slowdown",
    "CarbonAwareProvisioning",
    "CarbonPlanPoint",
    "FaultAwareProvisioning",
    "ProvisionEval",
    "provision_carbon_aware",
    "provision_fault_aware",
    "service_availability",
    "CarbonStats",
    "FleetResult",
    "ModelStats",
    "PhaseStats",
    "ServerStats",
    "fleet_power_summary",
    "ROUTING_POLICIES",
    "LeastOutstandingPolicy",
    "PowerOfTwoPolicy",
    "RoundRobinPolicy",
    "RoutingError",
    "RoutingPolicy",
    "WeightedPolicy",
    "make_policy",
    "prefer_other_domains",
]
