"""Reactive and predictive autoscaling between provisioning intervals.

The cluster manager re-provisions every tens of minutes; within an
interval the paper's over-provision rate ``R`` is the only headroom
against load growth.  This module adds the request-level complement in
two flavours:

- :class:`ReactiveAutoscaler` watches each model's windowed
  SLA-violation rate and activates standby replicas when the tail
  degrades, or drains lightly-loaded replicas when demand recedes.
  Scale-up triggers on violation rate (the symptom the SLA cares
  about); scale-down triggers on low offered utilization *and* a clean
  window, so a draining fleet never oscillates against its own tail.
- :class:`PredictiveAutoscaler` fits a windowed rate trend from the
  arrival stream's own history and provisions *ahead* of the diurnal
  ramp: standbys come online before the forecast demand outgrows the
  active capacity (and drain as the forecast recedes), instead of
  waiting for violations that have already happened.  A reactive
  violation trigger stays in as a safety net for spikes the trend
  cannot see.

Both share the engine-facing protocol -- a ``window_s`` attribute and
a ``tick()`` returning :class:`ScaleEvent` actions -- so the fleet
loops drive either without caring which is installed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = ["ScaleEvent", "ReactiveAutoscaler", "PredictiveAutoscaler"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action.

    Attributes:
        time_s: Simulation time of the decision.
        model: Model stream that triggered it.
        action: ``"activate"`` or ``"drain"``.
        server: The replica acted on (``FleetServer``).
        reason: Human-readable trigger, e.g. ``"viol=12.0%"``.
    """

    time_s: float
    model: str
    action: str
    server: object
    reason: str = ""


class ReactiveAutoscaler:
    """Windowed p99/SLA-violation watcher with activate/drain actions.

    Args:
        sla_ms: Per-model p99 targets.
        window_s: Observation window; decisions fire at window ends.
        violation_up: Window violation rate above which one standby
            replica is activated for the model.
        violation_clear: Ceiling the window must stay under before any
            scale-down is considered.
        utilization_down: Offered load over active profiled capacity
            below which one replica is drained.
        cooldown_s: Minimum time between actions on the same model.
        min_active: Never drain below this many replicas per model.
    """

    def __init__(
        self,
        sla_ms: dict[str, float],
        window_s: float = 1.0,
        violation_up: float = 0.05,
        violation_clear: float = 0.005,
        utilization_down: float = 0.35,
        cooldown_s: float = 2.0,
        min_active: int = 1,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= violation_clear <= violation_up <= 1.0:
            raise ValueError("need 0 <= violation_clear <= violation_up <= 1")
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self.sla_ms = dict(sla_ms)
        self.window_s = window_s
        self.violation_up = violation_up
        self.violation_clear = violation_clear
        self.utilization_down = utilization_down
        self.cooldown_s = cooldown_s
        self.min_active = min_active
        self._last_action: dict[str, float] = {}

    def tick(
        self,
        now: float,
        window_lat_ms: dict[str, list[float]],
        window_arrivals: dict[str, int],
        routable: dict[str, list],
        standby_for: Callable[[str], list],
        window_drops: dict[str, int] | None = None,
        window_failures: dict[str, int] | None = None,
        dead_domains: set | None = None,
    ) -> list[ScaleEvent]:
        """Evaluate one window; return the actions to apply.

        Args:
            now: Current simulation time.
            window_lat_ms: Completed-query latencies (ms) per model
                observed since the last tick.
            window_arrivals: Arrivals per model since the last tick.
            routable: Currently routable replicas per model.
            standby_for: Callback returning a model's standby replicas.
            window_drops: Queries per model that found no routable
                replica since the last tick; counted as violations so a
                model whose replicas are all standby can still trigger
                its own activation.
            window_failures: Queries per model lost to replica crashes
                since the last tick.  Counted as violations like drops,
                so a crash's capacity loss triggers standby activation
                within one window even before the surviving replicas'
                tails degrade.
            dead_domains: Fault domains with at least one currently
                crashed replica.  When given, standby activation
                prefers replicas *outside* those domains (a rack whose
                members are dying is the worst place to add capacity),
                falling back to weight order when every standby shares
                a dead domain.
        """
        events: list[ScaleEvent] = []
        for model, sla in self.sla_ms.items():
            if now - self._last_action.get(model, -1e18) < self.cooldown_s:
                continue
            latencies = window_lat_ms.get(model, [])
            active = routable.get(model, [])
            drops = (window_drops or {}).get(model, 0)
            drops += (window_failures or {}).get(model, 0)
            observed = len(latencies) + drops
            violations = sum(1 for lat in latencies if lat > sla) + drops
            rate = violations / observed if observed else 0.0

            if observed and rate > self.violation_up:
                standby = standby_for(model)
                if standby:
                    # Bring the fastest standby replica online first,
                    # preferring one in a fault domain with no dead
                    # member (ties keep pure weight order).
                    pick = _pick_standby(standby, dead_domains)
                    events.append(
                        ScaleEvent(now, model, "activate", pick, f"viol={rate:.1%}")
                    )
                    self._last_action[model] = now
                continue

            if rate <= self.violation_clear and len(active) > self.min_active:
                capacity = sum(s.weight for s in active)
                offered = window_arrivals.get(model, 0) / self.window_s
                if capacity > 0 and offered / capacity < self.utilization_down:
                    pick = min(active, key=lambda s: s.weight)
                    events.append(
                        ScaleEvent(
                            now,
                            model,
                            "drain",
                            pick,
                            f"util={offered / capacity:.1%}",
                        )
                    )
                    self._last_action[model] = now
        return events


def _pick_standby(standby: list, dead_domains: set | None):
    """Fastest standby, preferring fault domains with no dead member."""
    if dead_domains:
        return max(
            standby, key=lambda s: (s.domain not in dead_domains, s.weight)
        )
    return max(standby, key=lambda s: s.weight)


class PredictiveAutoscaler:
    """Forecast-driven activate/drain: scale *before* the ramp arrives.

    Each window, the scaler records the model's offered arrival rate
    (arrivals plus drops and crash losses -- demand, not goodput), fits
    a least-squares linear trend over the last ``history_windows``
    observations, and extrapolates ``lead_windows`` windows ahead.
    When the forecast demand outgrows the active replicas' profiled
    capacity at ``target_utilization``, standbys are activated *now* --
    enough of them to cover the forecast -- so they are serving when
    the ramp lands instead of after the first violation window.  On
    the downslope the forecast recedes and replicas drain as soon as
    the remaining fleet covers it, recovering standby power earlier
    than a violation-gated scaler dares to.

    A reactive violation trigger (``violation_up``) remains as a
    safety net: bursts with no trend still activate one standby per
    window, exactly like :class:`ReactiveAutoscaler`.

    Args:
        sla_ms: Per-model p99 targets (violation safety net).
        window_s: Observation window; decisions fire at window ends.
        lead_windows: How many windows ahead the forecast looks --
            roughly the activation lead time in units of ``window_s``.
        history_windows: Trend-fit history length.
        target_utilization: Offered load over profiled capacity the
            scaler provisions for (headroom = 1 - target).
        drain_utilization: Forecast utilization below which one replica
            drains per tick (must leave the forecast covered).
        violation_up: Window violation rate that force-activates one
            standby regardless of the forecast.
        violation_clear: Ceiling the window must stay under before any
            drain is considered.
        cooldown_s: Minimum time between drains on the same model
            (activations are never throttled -- a steep ramp may need
            several consecutive windows of scale-up).
        min_active: Never drain below this many replicas per model.
    """

    def __init__(
        self,
        sla_ms: dict[str, float],
        window_s: float = 1.0,
        lead_windows: int = 3,
        history_windows: int = 8,
        target_utilization: float = 0.70,
        drain_utilization: float = 0.45,
        violation_up: float = 0.05,
        violation_clear: float = 0.005,
        cooldown_s: float = 0.0,
        min_active: int = 1,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if lead_windows < 1 or history_windows < 2:
            raise ValueError("need lead_windows >= 1 and history_windows >= 2")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 <= drain_utilization < target_utilization:
            raise ValueError("need 0 <= drain_utilization < target_utilization")
        if not 0.0 <= violation_clear <= violation_up <= 1.0:
            raise ValueError("need 0 <= violation_clear <= violation_up <= 1")
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self.sla_ms = dict(sla_ms)
        self.window_s = window_s
        self.lead_windows = int(lead_windows)
        self.history_windows = int(history_windows)
        self.target_utilization = target_utilization
        self.drain_utilization = drain_utilization
        self.violation_up = violation_up
        self.violation_clear = violation_clear
        self.cooldown_s = cooldown_s
        self.min_active = min_active
        self._history: dict[str, deque] = {}
        self._last_drain: dict[str, float] = {}

    def _forecast(self, history: deque) -> float:
        """Linear trend through the rate history, ``lead_windows`` ahead.

        With fewer than two observations the forecast is the last
        rate.  The fitted line (not last-rate-plus-slope) is
        extrapolated, so single-window noise is smoothed by the whole
        history.
        """
        n = len(history)
        if n < 2:
            return history[-1] if n else 0.0
        mean_x = (n - 1) / 2.0
        mean_y = sum(history) / n
        num = 0.0
        den = 0.0
        for x, y in enumerate(history):
            dx = x - mean_x
            num += dx * (y - mean_y)
            den += dx * dx
        slope = num / den
        intercept = mean_y - slope * mean_x
        return max(0.0, intercept + slope * (n - 1 + self.lead_windows))

    def forecast_qps(self, model: str) -> float:
        """Current forecast for one model (0 before any history)."""
        return self._forecast(self._history.get(model, deque()))

    def tick(
        self,
        now: float,
        window_lat_ms: dict[str, list[float]],
        window_arrivals: dict[str, int],
        routable: dict[str, list],
        standby_for: Callable[[str], list],
        window_drops: dict[str, int] | None = None,
        window_failures: dict[str, int] | None = None,
        dead_domains: set | None = None,
    ) -> list[ScaleEvent]:
        """Evaluate one window; return the actions to apply.

        Same engine-facing contract as
        :meth:`ReactiveAutoscaler.tick`; may return several activate
        events in one tick when the forecast calls for more capacity
        than one standby provides.
        """
        events: list[ScaleEvent] = []
        for model, sla in self.sla_ms.items():
            latencies = window_lat_ms.get(model, [])
            lost = (window_drops or {}).get(model, 0)
            lost += (window_failures or {}).get(model, 0)
            offered = window_arrivals.get(model, 0) + lost
            rate = offered / self.window_s
            history = self._history.setdefault(
                model, deque(maxlen=self.history_windows)
            )
            history.append(rate)
            forecast = self._forecast(history)

            active = routable.get(model, [])
            capacity = sum(s.weight for s in active)
            observed = len(latencies) + lost
            violations = sum(1 for lat in latencies if lat > sla) + lost
            viol_rate = violations / observed if observed else 0.0

            needed = forecast / self.target_utilization
            hot = bool(observed) and viol_rate > self.violation_up
            if needed > capacity or hot:
                standby = list(standby_for(model))
                activated = False
                while standby and (capacity < needed or (hot and not activated)):
                    pick = _pick_standby(standby, dead_domains)
                    standby.remove(pick)
                    capacity += pick.weight
                    reason = (
                        f"viol={viol_rate:.1%}"
                        if hot and needed <= capacity - pick.weight
                        else f"forecast={forecast:.0f}qps"
                    )
                    events.append(ScaleEvent(now, model, "activate", pick, reason))
                    activated = True
                if activated:
                    continue  # never drain in the tick that scaled up

            if (
                viol_rate <= self.violation_clear
                and len(active) > self.min_active
                and capacity > 0
                and forecast / capacity < self.drain_utilization
                and now - self._last_drain.get(model, -1e18) >= self.cooldown_s
            ):
                pick = min(active, key=lambda s: s.weight)
                if needed <= capacity - pick.weight:
                    events.append(
                        ScaleEvent(
                            now,
                            model,
                            "drain",
                            pick,
                            f"forecast_util={forecast / capacity:.1%}",
                        )
                    )
                    self._last_drain[model] = now
        return events
