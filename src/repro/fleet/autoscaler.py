"""Reactive autoscaling between provisioning intervals.

The cluster manager re-provisions every tens of minutes; within an
interval the paper's over-provision rate ``R`` is the only headroom
against load growth.  This module adds the request-level complement: a
reactive scaler that watches each model's windowed SLA-violation rate
and activates standby replicas when the tail degrades, or drains
lightly-loaded replicas when demand recedes -- letting experiments
quantify what ``R`` buys in tail latency versus what reaction buys in
power.

Scale-up triggers on violation rate (the symptom the SLA cares about);
scale-down triggers on low offered utilization *and* a clean window, so
a draining fleet never oscillates against its own tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["ScaleEvent", "ReactiveAutoscaler"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action.

    Attributes:
        time_s: Simulation time of the decision.
        model: Model stream that triggered it.
        action: ``"activate"`` or ``"drain"``.
        server: The replica acted on (``FleetServer``).
        reason: Human-readable trigger, e.g. ``"viol=12.0%"``.
    """

    time_s: float
    model: str
    action: str
    server: object
    reason: str = ""


class ReactiveAutoscaler:
    """Windowed p99/SLA-violation watcher with activate/drain actions.

    Args:
        sla_ms: Per-model p99 targets.
        window_s: Observation window; decisions fire at window ends.
        violation_up: Window violation rate above which one standby
            replica is activated for the model.
        violation_clear: Ceiling the window must stay under before any
            scale-down is considered.
        utilization_down: Offered load over active profiled capacity
            below which one replica is drained.
        cooldown_s: Minimum time between actions on the same model.
        min_active: Never drain below this many replicas per model.
    """

    def __init__(
        self,
        sla_ms: dict[str, float],
        window_s: float = 1.0,
        violation_up: float = 0.05,
        violation_clear: float = 0.005,
        utilization_down: float = 0.35,
        cooldown_s: float = 2.0,
        min_active: int = 1,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= violation_clear <= violation_up <= 1.0:
            raise ValueError("need 0 <= violation_clear <= violation_up <= 1")
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self.sla_ms = dict(sla_ms)
        self.window_s = window_s
        self.violation_up = violation_up
        self.violation_clear = violation_clear
        self.utilization_down = utilization_down
        self.cooldown_s = cooldown_s
        self.min_active = min_active
        self._last_action: dict[str, float] = {}

    def tick(
        self,
        now: float,
        window_lat_ms: dict[str, list[float]],
        window_arrivals: dict[str, int],
        routable: dict[str, list],
        standby_for: Callable[[str], list],
        window_drops: dict[str, int] | None = None,
        window_failures: dict[str, int] | None = None,
        dead_domains: set | None = None,
    ) -> list[ScaleEvent]:
        """Evaluate one window; return the actions to apply.

        Args:
            now: Current simulation time.
            window_lat_ms: Completed-query latencies (ms) per model
                observed since the last tick.
            window_arrivals: Arrivals per model since the last tick.
            routable: Currently routable replicas per model.
            standby_for: Callback returning a model's standby replicas.
            window_drops: Queries per model that found no routable
                replica since the last tick; counted as violations so a
                model whose replicas are all standby can still trigger
                its own activation.
            window_failures: Queries per model lost to replica crashes
                since the last tick.  Counted as violations like drops,
                so a crash's capacity loss triggers standby activation
                within one window even before the surviving replicas'
                tails degrade.
            dead_domains: Fault domains with at least one currently
                crashed replica.  When given, standby activation
                prefers replicas *outside* those domains (a rack whose
                members are dying is the worst place to add capacity),
                falling back to weight order when every standby shares
                a dead domain.
        """
        events: list[ScaleEvent] = []
        for model, sla in self.sla_ms.items():
            if now - self._last_action.get(model, -1e18) < self.cooldown_s:
                continue
            latencies = window_lat_ms.get(model, [])
            active = routable.get(model, [])
            drops = (window_drops or {}).get(model, 0)
            drops += (window_failures or {}).get(model, 0)
            observed = len(latencies) + drops
            violations = sum(1 for lat in latencies if lat > sla) + drops
            rate = violations / observed if observed else 0.0

            if observed and rate > self.violation_up:
                standby = standby_for(model)
                if standby:
                    # Bring the fastest standby replica online first,
                    # preferring one in a fault domain with no dead
                    # member (ties keep pure weight order).
                    if dead_domains:
                        pick = max(
                            standby,
                            key=lambda s: (s.domain not in dead_domains, s.weight),
                        )
                    else:
                        pick = max(standby, key=lambda s: s.weight)
                    events.append(
                        ScaleEvent(now, model, "activate", pick, f"viol={rate:.1%}")
                    )
                    self._last_action[model] = now
                continue

            if rate <= self.violation_clear and len(active) > self.min_active:
                capacity = sum(s.weight for s in active)
                offered = window_arrivals.get(model, 0) / self.window_s
                if capacity > 0 and offered / capacity < self.utilization_down:
                    pick = min(active, key=lambda s: s.weight)
                    events.append(
                        ScaleEvent(
                            now,
                            model,
                            "drain",
                            pick,
                            f"util={offered / capacity:.1%}",
                        )
                    )
                    self._last_action[model] = now
        return events
