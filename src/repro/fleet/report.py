"""Fleet-run result types and SLA/power report formatting.

A :class:`FleetResult` is the request-level counterpart of the cluster
manager's interval records: instead of closed-form capacity margins it
carries measured per-model latency percentiles, SLA-violation rates,
per-replica throughput, and active-time-weighted fleet power -- the
quantities the paper's load-generator evaluation reports.  Fault-mode
runs additionally carry availability, failed/retried/hedged counts
(goodput accounting), and a per-phase p99 breakdown between fault
events.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis import format_table

__all__ = [
    "ModelStats",
    "ServerStats",
    "PhaseStats",
    "CarbonStats",
    "FleetResult",
    "LatencySketchSeries",
    "phase_breakdown",
    "fleet_power_summary",
]

#: Joules per kilowatt-hour -- the unit bridge between the replica
#: energy accounting (W x s) and grid carbon intensity (gCO2/kWh).
J_PER_KWH = 3.6e6


def fleet_power_summary(
    rows, horizon_s: float
) -> tuple[float, float]:
    """Fold replica ``(power_w, active_s)`` rows into fleet energy/power.

    The single seam for fleet energy accounting: the engine's
    summarizer and the sharded merge both fold their replica rows
    through this helper, in fleet-index order -- float addition order
    is part of the bit-identity contract, so callers must pass rows
    already in that order.  Returns ``(total_energy_j, avg_power_w)``
    where the average is taken over the full horizon (a zero or
    negative horizon is clamped to 1e-9 rather than dividing by zero).
    """
    total_energy = 0.0
    for power_w, active_s in rows:
        total_energy += power_w * active_s
    return total_energy, total_energy / max(horizon_s, 1e-9)


@dataclass(frozen=True)
class ModelStats:
    """Measured service quality for one model's query stream.

    Attributes:
        model: Model name.
        sla_ms: The p99 SLA target the stream is accounted against.
        completed: Queries completed in the measured window.
        dropped: Queries that found no routable replica (counted as
            SLA violations).
        qps: Completed throughput over the measured window -- with
            faults active this is the *goodput* (failed queries never
            complete).
        p50_ms / p95_ms / p99_ms / mean_ms: Latency distribution.
        violation_rate: Fraction of queries over SLA (dropped and
            failed included).
        failed: Queries lost to replica crashes (retry budget
            exhausted or no routable replica left).
        retried: Crash-killed attempts re-enqueued at the router.
        hedged: Duplicate attempts issued by hedged dispatch.
    """

    model: str
    sla_ms: float
    completed: int
    dropped: int
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    violation_rate: float
    failed: int = 0
    retried: int = 0
    hedged: int = 0

    @property
    def meets_sla(self) -> bool:
        return self.p99_ms <= self.sla_ms

    @property
    def goodput_fraction(self) -> float:
        """Fraction of demand that completed (vs failed or dropped)."""
        demand = self.completed + self.failed + self.dropped
        return self.completed / demand if demand else 1.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class PhaseStats:
    """Latency summary for one inter-fault-event window of a run."""

    start_s: float
    end_s: float
    completed: int
    p99_ms: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def phase_breakdown(
    completions: dict[str, list[tuple[float, float]]],
    event_times: tuple[float, ...],
    warmup_s: float,
    horizon: float,
    max_phases: int = 8,
) -> tuple[PhaseStats, ...]:
    """Split the measured window at fault-event times and report p99s.

    The phases make a straggler's or crash's impact window visible next
    to the run-wide percentiles: completions are bucketed (across all
    models) by finish time between consecutive fault events.  Long
    stochastic schedules are capped at ``max_phases`` windows by
    downsampling the boundary list.
    """
    import numpy as np

    cuts = sorted({t for t in event_times if warmup_s < t < horizon})
    if len(cuts) > max_phases - 1:
        idx = np.linspace(0, len(cuts) - 1, max_phases - 1).round().astype(int)
        cuts = [cuts[k] for k in dict.fromkeys(idx.tolist())]
    bounds = [warmup_s, *cuts, horizon]
    # Flatten every model's measured completions into one (finish,
    # latency) array pair; the per-phase selection is then a boolean
    # mask instead of a per-phase rescan of a tuple list.  p99 comes
    # out bit-identical: percentile interpolation depends only on the
    # selected multiset, not on sample order.
    fin_parts: list = []
    lat_parts: list = []
    for samples in completions.values():
        if type(samples) is tuple:
            # The vectorized core hands each model a finish-sorted
            # ``(finish, latency)`` array pair instead of a tuple list.
            fin, lats = samples
            keep = (fin - lats >= warmup_s) & (fin <= horizon)
            fin_parts.append(fin[keep])
            lat_parts.append(lats[keep])
        else:
            pairs = [
                (finish, lat)
                for finish, lat in samples
                if finish - lat >= warmup_s and finish <= horizon
            ]
            if pairs:
                m = len(pairs)
                fin_parts.append(
                    np.fromiter((p[0] for p in pairs), np.float64, count=m)
                )
                lat_parts.append(
                    np.fromiter((p[1] for p in pairs), np.float64, count=m)
                )
    if fin_parts:
        fin_a = np.concatenate(fin_parts)
        lat_a = np.concatenate(lat_parts)
    else:
        fin_a = np.empty(0)
        lat_a = np.empty(0)
    phases = []
    for a, b in zip(bounds, bounds[1:]):
        sel = (fin_a >= a) & (fin_a < b)
        if b == horizon:
            sel |= fin_a == b
        lats_p = lat_a[sel]
        p99 = (
            float(np.percentile(lats_p * 1e3, 99))
            if lats_p.size
            else float("inf")
        )
        phases.append(
            PhaseStats(
                start_s=a, end_s=b, completed=int(lats_p.size), p99_ms=p99
            )
        )
    return tuple(phases)


class LatencySketchSeries:
    """O(1)-memory stand-in for one model's completion sample list.

    ``FleetSimulator(percentile_mode="sketch")`` puts one of these where
    the event loops expect a ``list[(finish_s, latency_s)]``; the loops
    call ``append`` exactly as before, and the series folds each
    completion into a P² :class:`~repro.obs.sketch.QuantileSketch`
    instead of storing it.  Counts, throughput, mean, and the
    SLA-violation tally stay *exact* (the same float comparisons exact
    mode performs); only p50/p95/p99 are estimates.

    Window semantics mirror exact mode's summarize-time filter: appends
    whose arrival (``finish - latency``) precedes ``warmup_s`` are
    ignored, and once the horizon is known (``seal``, called by the
    loops at arrival-stream exhaustion, or up front via ``horizon_s``)
    appends finishing after it are ignored too.  Appends *before* the
    seal are always in-window -- the loops process events in global
    time order, so anything retired while arrivals remained finishes
    no later than the last arrival.
    """

    __slots__ = ("sla_ms", "warmup_s", "violations", "_horizon", "_sketch", "_buf")

    #: Completions buffered between P² batch folds (``add_many`` binds
    #: the marker state once per batch; same trick as the live-metrics
    #: hooks, bit-identical to per-observation ``add``).
    FLUSH_AT = 4096

    def __init__(
        self,
        sla_ms: float = float("inf"),
        warmup_s: float = 0.0,
        horizon_s: float | None = None,
    ) -> None:
        from repro.obs.sketch import QuantileSketch

        self.sla_ms = sla_ms
        self.warmup_s = warmup_s
        self.violations = 0
        self._horizon = horizon_s
        self._sketch = QuantileSketch((0.5, 0.95, 0.99))
        self._buf: list[float] = []

    def append(self, pair: tuple[float, float]) -> None:
        """Fold one ``(finish_s, latency_s)`` completion (hot path)."""
        finish, lat = pair
        if finish - lat < self.warmup_s:
            return
        horizon = self._horizon
        if horizon is not None and finish > horizon:
            return
        buf = self._buf
        buf.append(lat)
        if len(buf) >= self.FLUSH_AT:
            self._flush()

    def _flush(self) -> None:
        buf = self._buf
        if not buf:
            return
        sla = self.sla_ms
        ms = [lat * 1e3 for lat in buf]
        violations = 0
        for v in ms:
            if v > sla:
                violations += 1
        self.violations += violations
        self._sketch.add_many(ms)
        del buf[:]

    def seal(self, horizon: float) -> None:
        """Fix the measurement horizon (idempotent; first call wins)."""
        if self._horizon is None:
            self._horizon = horizon

    @property
    def count(self) -> int:
        """Exact in-window completion count."""
        return self._sketch.count + len(self._buf)

    def to_stats(
        self,
        model: str,
        sla_ms: float,
        dropped: int,
        duration_s: float,
        failed: int = 0,
        retried: int = 0,
        hedged: int = 0,
    ) -> ModelStats:
        """Emit the :class:`ModelStats` row exact mode would shape."""
        self._flush()
        sketch = self._sketch
        n = sketch.count
        lost = dropped + failed
        if n == 0:
            return ModelStats(
                model=model,
                sla_ms=sla_ms,
                completed=0,
                dropped=dropped,
                qps=0.0,
                p50_ms=float("inf"),
                p95_ms=float("inf"),
                p99_ms=float("inf"),
                mean_ms=float("inf"),
                violation_rate=1.0 if lost else 0.0,
                failed=failed,
                retried=retried,
                hedged=hedged,
            )
        # P² markers can momentarily invert across estimators; clamp to
        # a monotone p50 <= p95 <= p99 like the metrics probe does.
        p50 = sketch.quantile(0.5)
        p95 = max(p50, sketch.quantile(0.95))
        p99 = max(p95, sketch.quantile(0.99))
        return ModelStats(
            model=model,
            sla_ms=sla_ms,
            completed=n,
            dropped=dropped,
            qps=n / duration_s,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            mean_ms=sketch.mean,
            violation_rate=(self.violations + lost) / max(n + lost, 1),
            failed=failed,
            retried=retried,
            hedged=hedged,
        )


@dataclass(frozen=True)
class ServerStats:
    """Per-replica accounting of one fleet run.

    ``domain`` is the replica's correlated-fault domain (its own index
    when the run declared none -- every replica a singleton domain).
    """

    index: int
    server_type: str
    model: str
    plan: str
    completed: int
    qps: float
    power_w: float
    active_s: float
    ever_active: bool
    domain: int = -1

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CarbonStats:
    """gCO2 accounting for one fleet run against a carbon trace.

    Emissions integrate the existing per-replica energy model against
    the grid's carbon-intensity time series: each replica's average
    active power is spread over its recorded activation windows, and
    every window is priced by the trace's step-function intensity over
    that window (``docs/carbon.md``).  Deferrable batch jobs executed
    next to the real-time traffic contribute their own energy and
    emissions plus completion accounting.

    Attributes:
        total_g: Fleet-wide emissions, real-time plus deferrable.
        realtime_g: Emissions of the SLA-bound serving replicas.
        deferrable_g: Emissions of the deferrable batch jobs.
        energy_kwh / deferrable_energy_kwh: The energies behind the
            two emission numbers.
        mean_intensity: Trace mean intensity (gCO2/kWh) over the
            measured horizon -- the what-if-every-joule-were-average
            denominator for judging time-shifting gains.
        policy: Deferrable scheduling policy name (None when the run
            carried no deferrable jobs).
        power_cap_w: Fleet power cap the deferrable executor honored
            (None = uncapped).
        jobs_submitted / jobs_completed / jobs_suspended /
        jobs_dropped: Terminal job accounting; submitted ==
            completed + suspended (unfinished, deadline still open at
            the horizon) + dropped (deadline passed).
        job_suspensions: Mid-flight suspend events across all jobs.
    """

    total_g: float
    realtime_g: float
    deferrable_g: float
    energy_kwh: float
    deferrable_energy_kwh: float
    mean_intensity: float
    policy: str | None = None
    power_cap_w: float | None = None
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_suspended: int = 0
    jobs_dropped: int = 0
    job_suspensions: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet simulation.

    Attributes:
        policy: Routing-policy name the run used.
        duration_s: Measured (post-warmup) window length.
        per_model: Service stats per model stream.
        servers: Per-replica accounting rows.
        avg_power_w: Active-time-weighted mean fleet power.
        scale_events: Autoscaler actions, in order (empty when static).
        events: Simulation events processed (arrivals, batch
            completions, autoscaler ticks) -- the perf harness's
            events/sec denominator.
        availability: Uptime fraction of routable serving time --
            replica-seconds actually served over that plus the
            replica-seconds crashed-while-serving replicas spent dead.
            1.0 when no replica crashed; crashes reduce it even when
            every query is retried successfully; robust to replicas the
            autoscaler activates or drains mid-run.
        fault_events: Atomic fault events actually applied, in order.
        phases: Per-phase latency breakdown between fault events
            (empty for fault-free runs).
        carbon: gCO2 accounting against the run's carbon trace
            (None for runs without one -- the dormant default).
    """

    policy: str
    duration_s: float
    per_model: dict[str, ModelStats]
    servers: tuple[ServerStats, ...]
    avg_power_w: float
    scale_events: tuple = ()
    events: int = 0
    availability: float = 1.0
    fault_events: tuple = ()
    phases: tuple = ()
    carbon: CarbonStats | None = None

    @property
    def total_completed(self) -> int:
        return sum(m.completed for m in self.per_model.values())

    @property
    def total_dropped(self) -> int:
        return sum(m.dropped for m in self.per_model.values())

    @property
    def total_failed(self) -> int:
        return sum(m.failed for m in self.per_model.values())

    @property
    def total_retried(self) -> int:
        return sum(m.retried for m in self.per_model.values())

    @property
    def total_hedged(self) -> int:
        return sum(m.hedged for m in self.per_model.values())

    @property
    def worst_violation_rate(self) -> float:
        if not self.per_model:
            return 0.0
        return max(m.violation_rate for m in self.per_model.values())

    @property
    def active_servers(self) -> int:
        """Replicas that served traffic at any point of the run."""
        return sum(1 for s in self.servers if s.ever_active)

    def to_dict(self) -> dict:
        """JSON-serializable view of the whole result.

        Floats are carried verbatim (``json.dumps`` renders them with
        ``repr``, so the output round-trips exactly); the autoscaler's
        ``ScaleEvent.server`` object is flattened to its fleet index.
        Empty models report ``Infinity`` percentiles -- Python's JSON
        dialect, accepted back by ``json.loads``.  The ``carbon`` key
        appears only when the run carried a carbon trace, so the
        dormant payload is byte-identical to a pre-carbon run.
        """
        doc = {
            "policy": self.policy,
            "duration_s": self.duration_s,
            "avg_power_w": self.avg_power_w,
            "events": self.events,
            "availability": self.availability,
            "per_model": {
                m: stats.to_dict() for m, stats in sorted(self.per_model.items())
            },
            "servers": [s.to_dict() for s in self.servers],
            "scale_events": [
                {
                    "time_s": ev.time_s,
                    "model": ev.model,
                    "action": ev.action,
                    "server": getattr(ev.server, "index", None),
                    "reason": ev.reason,
                }
                for ev in self.scale_events
            ],
            "fault_events": [
                {
                    "time_s": ev.time_s,
                    "kind": ev.kind,
                    "server": ev.server_index,
                    "factor": ev.factor,
                }
                for ev in self.fault_events
            ],
            "phases": [ph.to_dict() for ph in self.phases],
            "totals": {
                "completed": self.total_completed,
                "dropped": self.total_dropped,
                "failed": self.total_failed,
                "retried": self.total_retried,
                "hedged": self.total_hedged,
            },
            "worst_violation_rate": self.worst_violation_rate,
            "active_servers": self.active_servers,
        }
        if self.carbon is not None:
            doc["carbon"] = self.carbon.to_dict()
        return doc

    def format(self, title: str = "") -> str:
        """Render the per-model SLA table plus the fleet summary line."""
        faulty = bool(self.fault_events) or (
            self.total_failed or self.total_retried or self.total_hedged
        )
        headers = ["model", "served", "dropped", "QPS", "p50 ms", "p99 ms", "SLA ms", "viol"]
        if faulty:
            headers[3:3] = ["failed", "retried", "hedged"]
        rows = []
        for m in sorted(self.per_model.values(), key=lambda s: s.model):
            row = [
                m.model,
                m.completed,
                m.dropped,
                round(m.qps),
                round(m.p50_ms, 1),
                round(m.p99_ms, 1),
                round(m.sla_ms),
                f"{m.violation_rate * 100:.2f}%",
            ]
            if faulty:
                row[3:3] = [m.failed, m.retried, m.hedged]
            rows.append(row)
        table = format_table(
            headers,
            rows,
            title=title or f"fleet replay ({self.policy} routing)",
        )
        summary = (
            f"servers active {self.active_servers}/{len(self.servers)}, "
            f"fleet power {self.avg_power_w / 1e3:.2f} kW, "
            f"queries served {self.total_completed}"
        )
        if self.scale_events:
            summary += f", scale events {len(self.scale_events)}"
        if faulty:
            summary += (
                f"\navailability {self.availability * 100:.2f}%, "
                f"goodput {self.total_completed / max(self.duration_s, 1e-9):.0f} QPS, "
                f"failed {self.total_failed}, retried {self.total_retried}, "
                f"hedged {self.total_hedged}, fault events {len(self.fault_events)}"
            )
            for ph in self.phases:
                p99 = "-" if ph.p99_ms == float("inf") else f"{ph.p99_ms:.1f} ms"
                summary += (
                    f"\n  phase [{ph.start_s:.2f}s, {ph.end_s:.2f}s): "
                    f"p99 {p99} over {ph.completed} queries"
                )
        carbon = self.carbon
        if carbon is not None:
            summary += (
                f"\ncarbon {carbon.total_g:.2f} gCO2 "
                f"(realtime {carbon.realtime_g:.2f} g, deferrable "
                f"{carbon.deferrable_g:.2f} g, grid mean "
                f"{carbon.mean_intensity:.0f} gCO2/kWh)"
            )
            if carbon.jobs_submitted:
                cap = (
                    "uncapped"
                    if carbon.power_cap_w is None
                    else f"cap {carbon.power_cap_w / 1e3:.2f} kW"
                )
                summary += (
                    f"\ndeferrable jobs ({carbon.policy}, {cap}): "
                    f"{carbon.jobs_completed}/{carbon.jobs_submitted} "
                    f"completed, {carbon.jobs_suspended} suspended, "
                    f"{carbon.jobs_dropped} dropped, "
                    f"{carbon.job_suspensions} suspend events"
                )
        return f"{table}\n{summary}"
