"""Fleet-run result types and SLA/power report formatting.

A :class:`FleetResult` is the request-level counterpart of the cluster
manager's interval records: instead of closed-form capacity margins it
carries measured per-model latency percentiles, SLA-violation rates,
per-replica throughput, and active-time-weighted fleet power -- the
quantities the paper's load-generator evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import format_table

__all__ = ["ModelStats", "ServerStats", "FleetResult"]


@dataclass(frozen=True)
class ModelStats:
    """Measured service quality for one model's query stream.

    Attributes:
        model: Model name.
        sla_ms: The p99 SLA target the stream is accounted against.
        completed: Queries completed in the measured window.
        dropped: Queries that found no routable replica (counted as
            SLA violations).
        qps: Completed throughput over the measured window.
        p50_ms / p95_ms / p99_ms / mean_ms: Latency distribution.
        violation_rate: Fraction of queries over SLA (dropped included).
    """

    model: str
    sla_ms: float
    completed: int
    dropped: int
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    violation_rate: float

    @property
    def meets_sla(self) -> bool:
        return self.p99_ms <= self.sla_ms


@dataclass(frozen=True)
class ServerStats:
    """Per-replica accounting of one fleet run."""

    index: int
    server_type: str
    model: str
    plan: str
    completed: int
    qps: float
    power_w: float
    active_s: float
    ever_active: bool


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet simulation.

    Attributes:
        policy: Routing-policy name the run used.
        duration_s: Measured (post-warmup) window length.
        per_model: Service stats per model stream.
        servers: Per-replica accounting rows.
        avg_power_w: Active-time-weighted mean fleet power.
        scale_events: Autoscaler actions, in order (empty when static).
        events: Simulation events processed (arrivals, batch
            completions, autoscaler ticks) -- the perf harness's
            events/sec denominator.
    """

    policy: str
    duration_s: float
    per_model: dict[str, ModelStats]
    servers: tuple[ServerStats, ...]
    avg_power_w: float
    scale_events: tuple = ()
    events: int = 0

    @property
    def total_completed(self) -> int:
        return sum(m.completed for m in self.per_model.values())

    @property
    def total_dropped(self) -> int:
        return sum(m.dropped for m in self.per_model.values())

    @property
    def worst_violation_rate(self) -> float:
        if not self.per_model:
            return 0.0
        return max(m.violation_rate for m in self.per_model.values())

    @property
    def active_servers(self) -> int:
        """Replicas that served traffic at any point of the run."""
        return sum(1 for s in self.servers if s.ever_active)

    def format(self, title: str = "") -> str:
        """Render the per-model SLA table plus the fleet summary line."""
        rows = [
            [
                m.model,
                m.completed,
                m.dropped,
                round(m.qps),
                round(m.p50_ms, 1),
                round(m.p99_ms, 1),
                round(m.sla_ms),
                f"{m.violation_rate * 100:.2f}%",
            ]
            for m in sorted(self.per_model.values(), key=lambda s: s.model)
        ]
        table = format_table(
            ["model", "served", "dropped", "QPS", "p50 ms", "p99 ms", "SLA ms", "viol"],
            rows,
            title=title or f"fleet replay ({self.policy} routing)",
        )
        summary = (
            f"servers active {self.active_servers}/{len(self.servers)}, "
            f"fleet power {self.avg_power_w / 1e3:.2f} kW, "
            f"queries served {self.total_completed}"
        )
        if self.scale_events:
            summary += f", scale events {len(self.scale_events)}"
        return f"{table}\n{summary}"
