"""Deterministic fault injection for the fleet simulator.

The paper's cluster story is a provisioning story; whether it survives
contact with production depends on how the serving tier degrades when
replicas die or stall mid-interval.  This module adds that degradation
as a first-class, *seed-deterministic* input to the fleet DES:

- :class:`FaultEvent` / :class:`FaultSchedule` -- scripted and
  stochastic fault timelines (replica crash, crash-with-recovery,
  slowdown/straggler factors, transient blips).  ``materialize``
  expands a schedule into atomic, time-sorted events for a concrete
  fleet, so identical ``(schedule, fleet, seed)`` triples always
  replay identically.
- :func:`run_fault_loop` -- the fault-aware twin of the engine's hot
  event loop.  Crashed replicas leave the routable set, their in-flight
  queries are re-enqueued at the router (up to a retry budget) or
  failed; stragglers have their stage service times scaled; hedged
  dispatch races a duplicate attempt on a second replica after a
  configurable delay.  The fault-free engine loop is untouched -- with
  no faults scheduled the two loops execute the same float operations
  in the same order, which ``tests/test_perf_equivalence.py`` enforces
  with exact equality.

Fault semantics (all deterministic):

- ``crash``: the replica is removed from routing, its queued and
  in-service batches are cancelled, and every query that loses its
  last outstanding attempt is retried at the router (if the per-query
  retry budget allows and a routable replica exists) or failed.
  Arrivals at exactly the crash timestamp still route to the dying
  replica (arrivals win ties, as in the fault-free loop).
- ``recover``: a replica that was serving when it crashed rejoins the
  routable set with empty queues; standby/draining replicas come back
  cold, available to the autoscaler again.
- ``slow`` / ``restore``: batches *started* while the factor is active
  take ``factor``x their nominal service time (in-flight batches keep
  their scheduled completions).
- Overlapping episodes on one replica resolve conservatively: a crash
  landing inside another crash's recovery window extends the outage to
  the *last* scheduled recover (a crash with no recover pins the
  replica dead); overlapping slowdowns apply the latest factor and end
  at the last scheduled restore.
- Hedging: at most one hedge per query; the duplicate attempt targets a
  replica the query has not tried, preferring one in a fault domain the
  query has not touched (see below).  The query completes at its
  fastest finishing attempt; the loser's work still counts against its
  server.
- Correlated fault domains: replicas can be grouped into rack /
  power-domain style :class:`FaultDomains`; a domain-targeted fault
  fires on *every* member at the same timestamp (they leave the
  routable set together), and hedged dispatch avoids placing both
  attempts of one query inside a single domain whenever a live replica
  exists in another domain.  Replicas outside any declared domain are
  singleton domains of their own, which makes the domain-aware code
  paths exact no-ops for undeclared fleets.

CLI spec grammar (``python -m repro.cli fleet --faults ...``):

The spec is a list of *sections* separated by ``;``.  A section is
either a single ``random:`` clause or a comma-separated list of
scripted entries.  Times and durations are seconds and accept an
optional ``s`` suffix (``crash@5s:dom0`` == ``crash@5:dom0``).

Scripted entries (``TGT`` is a replica index, or ``domN`` for fault
domain ``N``):

- ``crash@T:TGT`` -- kill the target at ``T`` seconds (for good).
- ``crash@T:TGT+DUR`` -- crash, recover after ``DUR`` seconds.
- ``blip@T:TGT[+DUR]`` -- transient crash (default recovery 0.25 s).
- ``slow@T:TGT*F[+DUR]`` -- straggler: service times x ``F`` from
  ``T``, optionally restored after ``DUR`` seconds.
- ``domain:LO-HI`` -- declare the next fault domain as replicas
  ``LO..HI`` inclusive (domains are numbered 0, 1, ... in declaration
  order; ranges must not overlap).
- ``domain:size=K`` -- partition the whole fleet into consecutive
  domains of ``K`` replicas (rack size); exclusive with range
  declarations.

Stochastic clause (drawn deterministically from the run seed):

- ``random:crash_mtbf=20,mttr=2,slow_mtbf=15,slow_factor=3,slow_dur=1``
  -- per-replica exponential time-between-failures and repair times.
- ``random:domain_mtbf=60,domain_mttr=2`` -- per-*domain* exponential
  crash/repair: all members of the drawn domain crash and recover
  together (requires ``domain:`` declarations).

Examples: ``crash@2:0+1,slow@1:3*2.5+2`` (independent faults),
``domain:0-9;crash@5s:dom0`` (rack 0 dies at 5 s),
``domain:size=4;random:domain_mtbf=30,domain_mttr=1`` (stochastic
rack-level outages on racks of four).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Iterable, Sequence

from repro.fleet.routing import prefer_other_domains
from repro.sim.event_core import QueryState

__all__ = [
    "DomainFaultEvent",
    "FaultDomains",
    "FaultEvent",
    "FaultSchedule",
    "TrackedQuery",
    "crash",
    "domain_crash",
    "domain_slowdown",
    "slowdown",
    "run_fault_loop",
]

_KINDS = ("crash", "recover", "slow", "restore")


@dataclass(frozen=True)
class FaultEvent:
    """One fault on one replica.

    Attributes:
        time_s: Simulation time the fault fires.
        kind: ``"crash"``, ``"recover"``, ``"slow"``, or ``"restore"``.
        server_index: Fleet index of the targeted replica.
        factor: Service-time multiplier (``slow`` only; > 1 = slower).
        duration_s: Scripted sugar -- a ``crash``/``slow`` with a
            duration expands into the event plus its paired
            ``recover``/``restore`` at ``time_s + duration_s`` when the
            schedule is materialized.
    """

    time_s: float
    kind: str
    server_index: int
    factor: float = 1.0
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {_KINDS}")
        if self.time_s < 0.0:
            raise ValueError("fault time must be >= 0")
        if self.server_index < 0:
            raise ValueError("server_index must be >= 0")
        if self.kind == "slow" and self.factor <= 0.0:
            raise ValueError("slowdown factor must be > 0")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError("fault duration must be > 0")


def crash(time_s: float, server_index: int, recover_after: float | None = None) -> FaultEvent:
    """A replica crash, optionally recovering ``recover_after`` seconds later."""
    return FaultEvent(time_s, "crash", server_index, duration_s=recover_after)


def slowdown(
    time_s: float, server_index: int, factor: float, duration: float | None = None
) -> FaultEvent:
    """A straggler: service times x ``factor``, optionally for ``duration`` s."""
    return FaultEvent(time_s, "slow", server_index, factor=factor, duration_s=duration)


@dataclass(frozen=True)
class DomainFaultEvent:
    """One scripted fault on a whole fault domain.

    At :meth:`FaultSchedule.materialize` time the event expands into
    one atomic :class:`FaultEvent` per domain member, all at the same
    ``time_s`` (and, with a duration, one paired recover/restore per
    member) -- correlated failure is literally simultaneous failure of
    every replica in the domain.

    Attributes:
        time_s: Simulation time the fault fires.
        kind: ``"crash"`` or ``"slow"``.
        domain: Declared fault-domain id the event targets.
        factor: Service-time multiplier (``slow`` only; > 1 = slower).
        duration_s: Optional outage/episode length (expands into paired
            per-member ``recover``/``restore`` events).
    """

    time_s: float
    kind: str
    domain: int
    factor: float = 1.0
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "slow"):
            raise ValueError(
                f"domain faults support crash/slow, not {self.kind!r}"
            )
        if self.time_s < 0.0:
            raise ValueError("fault time must be >= 0")
        if self.domain < 0:
            raise ValueError("domain must be >= 0")
        if self.kind == "slow" and self.factor <= 0.0:
            raise ValueError("slowdown factor must be > 0")
        if self.duration_s is not None and self.duration_s <= 0.0:
            raise ValueError("fault duration must be > 0")


def domain_crash(
    time_s: float, domain: int, recover_after: float | None = None
) -> DomainFaultEvent:
    """Crash every member of ``domain``, optionally recovering together."""
    return DomainFaultEvent(time_s, "crash", domain, duration_s=recover_after)


def domain_slowdown(
    time_s: float, domain: int, factor: float, duration: float | None = None
) -> DomainFaultEvent:
    """Slow every member of ``domain`` by ``factor``, optionally for ``duration`` s."""
    return DomainFaultEvent(time_s, "slow", domain, factor=factor, duration_s=duration)


class FaultDomains:
    """Replica -> correlated-fault-domain assignment (racks, power domains).

    Exactly one of two shapes:

    - ``ranges``: explicit inclusive index ranges, one per domain, in
      declaration order (``[(0, 3), (4, 7)]`` -> domains 0 and 1).
      Ranges must not overlap; replicas outside every range become
      singleton domains of their own.
    - ``size``: partition the whole fleet into consecutive domains of
      ``size`` replicas (the "rack size" shorthand) -- resolved against
      the concrete fleet size at :meth:`map` time.

    The assignment is purely an *identity* function over replica
    indices; what it buys is (a) domain-targeted fault events expanding
    to every member simultaneously and (b) hedged dispatch preferring a
    replica whose domain the query has not touched.
    """

    def __init__(
        self,
        ranges: Sequence[tuple[int, int]] | None = None,
        size: int | None = None,
    ) -> None:
        if (ranges is None) == (size is None):
            raise ValueError("FaultDomains needs exactly one of ranges= or size=")
        if size is not None and size < 1:
            raise ValueError("domain size must be >= 1")
        self.size = size
        self.ranges: tuple[tuple[int, int], ...] = ()
        if ranges is not None:
            cleaned = []
            for lo, hi in ranges:
                if lo < 0 or hi < lo:
                    raise ValueError(f"bad domain range {lo}-{hi}")
                cleaned.append((int(lo), int(hi)))
            for (a_lo, a_hi), (b_lo, b_hi) in zip(
                sorted(cleaned), sorted(cleaned)[1:]
            ):
                if b_lo <= a_hi:
                    raise ValueError(
                        f"overlapping domain ranges {a_lo}-{a_hi} and {b_lo}-{b_hi}"
                    )
            if not cleaned:
                raise ValueError("need at least one domain range")
            self.ranges = tuple(cleaned)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.size is not None:
            return f"FaultDomains(size={self.size})"
        return f"FaultDomains(ranges={list(self.ranges)})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultDomains)
            and self.size == other.size
            and self.ranges == other.ranges
        )

    def map(self, num_servers: int) -> list[int]:
        """Domain id per replica index for a concrete fleet size.

        Declared domains take ids ``0..K-1``; replicas outside every
        declared range get fresh singleton ids ``K, K+1, ...`` so no
        two unrelated replicas ever share a domain implicitly.
        """
        if self.size is not None:
            return [idx // self.size for idx in range(num_servers)]
        assigned = [-1] * num_servers
        for dom, (lo, hi) in enumerate(self.ranges):
            if hi >= num_servers:
                raise ValueError(
                    f"domain range {lo}-{hi} exceeds the fleet "
                    f"({num_servers} replicas)"
                )
            for idx in range(lo, hi + 1):
                assigned[idx] = dom
        next_id = len(self.ranges)
        for idx, dom in enumerate(assigned):
            if dom < 0:
                assigned[idx] = next_id
                next_id += 1
        return assigned

    def members(self, num_servers: int) -> dict[int, list[int]]:
        """Domain id -> member replica indices (declared domains only
        for range-shaped assignments; every domain for ``size=``)."""
        out: dict[int, list[int]] = {}
        for idx, dom in enumerate(self.map(num_servers)):
            out.setdefault(dom, []).append(idx)
        if self.size is None:
            out = {d: m for d, m in out.items() if d < len(self.ranges)}
        return out

    def num_domains(self, num_servers: int) -> int:
        """Declared (addressable) domain count for a concrete fleet."""
        if self.size is not None:
            return (num_servers + self.size - 1) // self.size
        return len(self.ranges)


_ENTRY_RE = re.compile(
    r"^(crash|slow|blip)@([0-9]*\.?[0-9]+(?:e-?[0-9]+)?)s?:(dom)?([0-9]+)"
    r"(?:\*([0-9]*\.?[0-9]+))?(?:\+([0-9]*\.?[0-9]+)s?)?$"
)
_DOMAIN_RANGE_RE = re.compile(r"^domain:([0-9]+)-([0-9]+)$")
_DOMAIN_SIZE_RE = re.compile(r"^domain:size=([0-9]+)$")

#: CLI keys for ``random:`` specs -> ``FaultSchedule.stochastic`` kwargs.
_STOCHASTIC_KEYS = {
    "crash_mtbf": "crash_mtbf_s",
    "mttr": "mttr_s",
    "slow_mtbf": "slow_mtbf_s",
    "slow_factor": "slow_factor",
    "slow_dur": "slow_duration_s",
    "domain_mtbf": "domain_mtbf_s",
    "domain_mttr": "domain_mttr_s",
}


class FaultSchedule:
    """A scripted and/or stochastic fault timeline for one fleet run.

    Scripted per-replica events are passed to the constructor, scripted
    whole-domain events via ``domain_events`` (which require a
    ``domains`` declaration); stochastic behaviour is configured with
    :meth:`stochastic` and drawn deterministically from the run seed at
    :meth:`materialize` time.  An empty schedule is the explicit "no
    faults" statement -- the engine keeps its exact fault-free
    semantics (enforced by the differential tests).  A schedule that
    declares ``domains`` but no events injects nothing either; the
    declaration still steers domain-aware hedging.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        domains: FaultDomains | None = None,
        domain_events: Iterable[DomainFaultEvent] = (),
    ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(events)
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {type(ev).__name__}")
        self.domain_events: tuple[DomainFaultEvent, ...] = tuple(domain_events)
        for ev in self.domain_events:
            if not isinstance(ev, DomainFaultEvent):
                raise TypeError(
                    f"expected DomainFaultEvent, got {type(ev).__name__}"
                )
        if domains is not None and not isinstance(domains, FaultDomains):
            raise TypeError(f"expected FaultDomains, got {type(domains).__name__}")
        if self.domain_events and domains is None:
            raise ValueError("domain-targeted events need a domains= declaration")
        self.domains = domains
        self.stochastic_params: dict | None = None

    @property
    def is_empty(self) -> bool:
        return (
            not self.events
            and not self.domain_events
            and self.stochastic_params is None
        )

    def __len__(self) -> int:
        return len(self.events) + len(self.domain_events)

    def __bool__(self) -> bool:
        """Truthy when any fault (scripted or stochastic) can fire."""
        return not self.is_empty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{len(self.events)} scripted"]
        if self.domain_events:
            parts.append(f"{len(self.domain_events)} domain-scripted")
        if self.domains is not None:
            parts.append(repr(self.domains))
        if self.stochastic_params:
            parts.append(f"stochastic {self.stochastic_params}")
        return f"FaultSchedule({', '.join(parts)})"

    # ------------------------------------------------------------------

    @classmethod
    def stochastic(
        cls,
        crash_mtbf_s: float | None = None,
        mttr_s: float = 2.0,
        slow_mtbf_s: float | None = None,
        slow_factor: float = 3.0,
        slow_duration_s: float = 1.0,
        domain_mtbf_s: float | None = None,
        domain_mttr_s: float = 2.0,
        domains: FaultDomains | None = None,
    ) -> "FaultSchedule":
        """A seed-driven random schedule.

        Args:
            crash_mtbf_s: Per-replica mean time between crashes
                (exponential); ``None`` disables crashes.
            mttr_s: Mean time to recovery after a crash (exponential).
            slow_mtbf_s: Per-replica mean time between slowdown onsets;
                ``None`` disables stragglers.
            slow_factor: Service-time multiplier while slowed.
            slow_duration_s: Fixed straggler episode length.
            domain_mtbf_s: Per-*domain* mean time between correlated
                crashes (every member crashes together); requires
                ``domains``.  ``None`` disables domain outages.
            domain_mttr_s: Mean time to recovery of a domain outage.
            domains: Replica -> fault-domain assignment the domain
                draws (and domain-aware hedging) use.
        """
        if crash_mtbf_s is None and slow_mtbf_s is None and domain_mtbf_s is None:
            raise ValueError(
                "need crash_mtbf_s, slow_mtbf_s, and/or domain_mtbf_s"
            )
        for name, value in (
            ("crash_mtbf_s", crash_mtbf_s),
            ("mttr_s", mttr_s),
            ("slow_mtbf_s", slow_mtbf_s),
            ("slow_factor", slow_factor),
            ("slow_duration_s", slow_duration_s),
            ("domain_mtbf_s", domain_mtbf_s),
            ("domain_mttr_s", domain_mttr_s),
        ):
            if value is not None and value <= 0.0:
                raise ValueError(f"{name} must be > 0")
        if domain_mtbf_s is not None and domains is None:
            raise ValueError("domain_mtbf_s needs a domains= declaration")
        schedule = cls(domains=domains)
        schedule.stochastic_params = {
            "crash_mtbf_s": crash_mtbf_s,
            "mttr_s": mttr_s,
            "slow_mtbf_s": slow_mtbf_s,
            "slow_factor": slow_factor,
            "slow_duration_s": slow_duration_s,
            "domain_mtbf_s": domain_mtbf_s,
            "domain_mttr_s": domain_mttr_s,
        }
        return schedule

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the ``--faults`` CLI mini-language into a schedule.

        The grammar (full reference in the module docstring and
        ``docs/cli.md``): the spec splits into ``;``-separated
        sections; each section is either one ``random:key=value,...``
        stochastic clause or a comma-separated list of scripted
        entries.  Scripted entries are ``kind@T:TGT[*F][+DUR]`` with
        ``kind`` one of ``crash``/``blip``/``slow``, ``TGT`` a replica
        index or ``domN``, and domain declarations ``domain:LO-HI`` /
        ``domain:size=K``.  Times/durations take an optional ``s``
        suffix.  Raises :class:`ValueError` with the offending entry on
        any syntax or consistency error (e.g. ``domN`` targets without
        a ``domain:`` declaration, two ``random:`` sections, mixing
        ``domain:size=`` with ranges).
        """
        spec = spec.strip()
        if not spec:
            return cls()
        events: list[FaultEvent] = []
        domain_events: list[DomainFaultEvent] = []
        ranges: list[tuple[int, int]] = []
        dom_size: int | None = None
        stochastic_kwargs: dict[str, float] | None = None
        for section in spec.split(";"):
            section = section.strip()
            if not section:
                continue
            if section.startswith("random:"):
                if stochastic_kwargs is not None:
                    raise ValueError("at most one random: section per spec")
                stochastic_kwargs = {}
                for pair in section[len("random:"):].split(","):
                    key, sep, value = pair.strip().partition("=")
                    if not sep or key not in _STOCHASTIC_KEYS:
                        raise ValueError(
                            f"bad stochastic fault parameter {pair!r}; known "
                            f"keys: {', '.join(sorted(_STOCHASTIC_KEYS))}"
                        )
                    stochastic_kwargs[_STOCHASTIC_KEYS[key]] = float(value)
                continue
            for entry in section.split(","):
                entry = entry.strip()
                dm = _DOMAIN_RANGE_RE.match(entry)
                if dm is not None:
                    if dom_size is not None:
                        raise ValueError(
                            "cannot mix domain:size= with domain:LO-HI ranges"
                        )
                    ranges.append((int(dm.group(1)), int(dm.group(2))))
                    continue
                dm = _DOMAIN_SIZE_RE.match(entry)
                if dm is not None:
                    if ranges:
                        raise ValueError(
                            "cannot mix domain:size= with domain:LO-HI ranges"
                        )
                    if dom_size is not None:
                        raise ValueError("at most one domain:size= per spec")
                    dom_size = int(dm.group(1))
                    continue
                m = _ENTRY_RE.match(entry)
                if m is None:
                    raise ValueError(
                        f"bad fault entry {entry!r}; expected "
                        "kind@time:target[*factor][+duration] with kind one of "
                        "crash/slow/blip and target a replica index or domN, "
                        "a domain:LO-HI / domain:size=K declaration, or a "
                        "random:key=value,... section"
                    )
                kind, t, dom_tag, idx, factor, dur = m.groups()
                time_s, index = float(t), int(idx)
                duration = float(dur) if dur is not None else None
                if kind == "slow":
                    if factor is None:
                        raise ValueError(f"{entry!r}: slow needs *factor")
                else:
                    if factor is not None:
                        raise ValueError(f"{entry!r}: only slow takes *factor")
                    if kind == "blip" and duration is None:
                        duration = 0.25
                if dom_tag is not None:
                    if kind == "slow":
                        domain_events.append(
                            domain_slowdown(time_s, index, float(factor), duration)
                        )
                    else:
                        domain_events.append(
                            domain_crash(time_s, index, recover_after=duration)
                        )
                elif kind == "slow":
                    events.append(slowdown(time_s, index, float(factor), duration))
                else:
                    events.append(crash(time_s, index, recover_after=duration))
        domains: FaultDomains | None = None
        if dom_size is not None:
            domains = FaultDomains(size=dom_size)
        elif ranges:
            domains = FaultDomains(ranges=ranges)
        if domain_events and domains is None:
            raise ValueError(
                "domN fault targets need a domain:LO-HI or domain:size=K "
                "declaration in the same spec"
            )
        if stochastic_kwargs is not None:
            if events or domain_events:
                raise ValueError(
                    "scripted entries and random: cannot mix in one spec "
                    "(domain: declarations are fine)"
                )
            return cls.stochastic(**stochastic_kwargs, domains=domains)
        return cls(events, domains=domains, domain_events=domain_events)

    # ------------------------------------------------------------------

    def min_fleet_size(self) -> int:
        """Smallest fleet the schedule's explicit targets fit.

        Index-targeted scripted events and explicit ``domain:LO-HI``
        ranges name concrete fleet positions; replaying the schedule on
        a smaller fleet is an error (``materialize`` and the engine's
        domain stamping both raise).  Fleet-size-adaptive forms --
        ``domain:size=K`` and stochastic draws -- require nothing.
        Callers that size the fleet themselves (the fault-aware
        provisioner) check this up front to fail with an actionable
        message instead of mid-replay.
        """
        needed = max((ev.server_index + 1 for ev in self.events), default=0)
        if self.domains is not None:
            if self.domains.ranges:
                needed = max(
                    needed, max(hi + 1 for _, hi in self.domains.ranges)
                )
            elif self.domain_events:
                # size=K racks exist lazily: dom N needs the fleet to
                # reach rack N's first replica.
                max_dom = max(ev.domain for ev in self.domain_events)
                needed = max(needed, max_dom * self.domains.size + 1)
        return needed

    def domain_map(self, num_servers: int) -> list[int]:
        """Domain id per replica index (singletons when undeclared).

        This is what the fleet engine stamps onto each replica's
        ``domain`` attribute; with no declaration every replica is its
        own domain, which makes the domain-aware hedging filter an
        exact no-op.
        """
        if self.domains is None:
            return list(range(num_servers))
        return self.domains.map(num_servers)

    def materialize(
        self, num_servers: int, horizon_s: float, seed: int = 0
    ) -> list[FaultEvent]:
        """Expand into atomic, time-sorted events for a concrete fleet.

        Scripted durations become paired recover/restore events;
        domain-targeted events expand into one event per member (all at
        the same timestamp, so the members leave the routable set
        together); stochastic parameters are drawn per replica (or per
        domain) from RNGs derived from ``seed``, so the same
        (schedule, fleet size, horizon, seed) always yields the same
        list.
        """
        atomic: list[FaultEvent] = []

        def expand(ev: FaultEvent) -> None:
            if ev.duration_s is None:
                atomic.append(ev)
            elif ev.kind == "crash":
                atomic.append(FaultEvent(ev.time_s, "crash", ev.server_index))
                atomic.append(
                    FaultEvent(ev.time_s + ev.duration_s, "recover", ev.server_index)
                )
            elif ev.kind == "slow":
                atomic.append(
                    FaultEvent(ev.time_s, "slow", ev.server_index, factor=ev.factor)
                )
                atomic.append(
                    FaultEvent(ev.time_s + ev.duration_s, "restore", ev.server_index)
                )
            else:
                atomic.append(ev)

        for ev in self.events:
            if ev.server_index >= num_servers:
                raise ValueError(
                    f"fault targets replica {ev.server_index} but the fleet "
                    f"has only {num_servers} replicas"
                )
            expand(ev)
        if self.domain_events:
            members = self.domains.members(num_servers)
            for dev in self.domain_events:
                if dev.domain not in members:
                    raise ValueError(
                        f"fault targets domain {dev.domain} but only "
                        f"{self.domains.num_domains(num_servers)} domains are "
                        "declared for this fleet"
                    )
                for idx in members[dev.domain]:
                    expand(
                        FaultEvent(
                            dev.time_s,
                            dev.kind,
                            idx,
                            factor=dev.factor,
                            duration_s=dev.duration_s,
                        )
                    )
        if self.stochastic_params is not None:
            atomic.extend(self._draw(num_servers, horizon_s, seed))
        atomic.sort(key=lambda e: e.time_s)  # stable: generation order on ties
        return atomic

    def _draw(self, num_servers: int, horizon_s: float, seed: int) -> list[FaultEvent]:
        p = self.stochastic_params
        out: list[FaultEvent] = []
        for idx in range(num_servers):
            if p["crash_mtbf_s"] is not None:
                rng = random.Random(seed * 1_000_003 + 2 * idx)
                t = rng.expovariate(1.0 / p["crash_mtbf_s"])
                while t < horizon_s:
                    repair = rng.expovariate(1.0 / p["mttr_s"])
                    out.append(FaultEvent(t, "crash", idx))
                    out.append(FaultEvent(t + repair, "recover", idx))
                    t = t + repair + rng.expovariate(1.0 / p["crash_mtbf_s"])
            if p["slow_mtbf_s"] is not None:
                rng = random.Random(seed * 1_000_003 + 2 * idx + 1)
                t = rng.expovariate(1.0 / p["slow_mtbf_s"])
                while t < horizon_s:
                    out.append(FaultEvent(t, "slow", idx, factor=p["slow_factor"]))
                    out.append(FaultEvent(t + p["slow_duration_s"], "restore", idx))
                    t = t + p["slow_duration_s"] + rng.expovariate(
                        1.0 / p["slow_mtbf_s"]
                    )
        if p.get("domain_mtbf_s") is not None:
            # One independent RNG stream per *declared* domain, offset
            # away from the per-replica streams so adding domain faults
            # never perturbs the per-replica draws for the same seed.
            for dom, idxs in sorted(self.domains.members(num_servers).items()):
                rng = random.Random(seed * 1_000_003 + 1_000_081 + 2 * dom + 1)
                t = rng.expovariate(1.0 / p["domain_mtbf_s"])
                while t < horizon_s:
                    repair = rng.expovariate(1.0 / p["domain_mttr_s"])
                    for idx in idxs:
                        out.append(FaultEvent(t, "crash", idx))
                    for idx in idxs:
                        out.append(FaultEvent(t + repair, "recover", idx))
                    t = t + repair + rng.expovariate(1.0 / p["domain_mtbf_s"])
        return out


# ----------------------------------------------------------------------
# Runtime records
# ----------------------------------------------------------------------


class TrackedQuery:
    """Per-query fault-mode record: outcome plus every dispatch attempt.

    Every query ends the run in exactly one terminal ``outcome`` --
    completed, failed, or dropped (the conservation invariant the
    property tests pin).  ``attempts`` holds ``[server, dispatch_s,
    end_s | None, status]`` lists with status 0 = in flight, 1 =
    completed, 2 = killed by a crash; completed attempts end at their
    finish time, killed attempts at the crash that killed them (the
    tracer's attempt-span end).  Exposed as
    ``FleetSimulator.last_query_log``.

    The packed ``outcome`` / ``hedge_state`` ints keep the per-arrival
    allocation cheap (the record rides the fault loop's hot path); the
    ``done`` / ``failed`` / ``dropped`` / ``hedged`` properties are the
    readable API.
    """

    __slots__ = (
        "query",
        "model",
        "outcome",  # 0 = in flight, 1 = completed, 2 = failed, 3 = dropped
        "finish_s",
        "retries",
        "hedge_state",  # 0 = unarmed, 1 = timer armed, 2 = hedged
        "attempts",
    )

    def __init__(self, query, model: str) -> None:
        self.query = query
        self.model = model
        self.outcome = 0
        self.finish_s = None
        self.retries = 0
        self.hedge_state = 0
        self.attempts: list[list] = []

    @property
    def done(self) -> bool:
        return self.outcome == 1

    @property
    def failed(self) -> bool:
        return self.outcome == 2

    @property
    def dropped(self) -> bool:
        return self.outcome == 3

    @property
    def hedged(self) -> bool:
        return self.hedge_state == 2


class _FaultQueryState(QueryState):
    """Pipeline-path query state carrying its fault-mode bookkeeping."""

    __slots__ = ("tracked", "attempt")


#: Heap-owner sentinels (never equal to a FleetServer or None).
_FAULT = object()
_HEDGE = object()


class _FaultState:
    """Replica-level fault bookkeeping shared by both fault loops.

    Owns everything about a fault event except what happens to the
    crashed replica's in-flight queries (the one part the light and
    tracked loops do differently -- passed in as ``kill_in_flight``):
    role classification, routable-list membership, downtime accounting,
    the applied-event record, and overlap resolution.

    Overlap semantics: a crash landing while a replica is already dead
    swallows one future ``recover``, so the replica stays down until
    the *last* scheduled recover (or forever, if any covering crash was
    permanent).  A slowdown landing while a replica is already slowed
    applies the newest factor and swallows one future ``restore``, so
    the episode ends at the last scheduled restore.
    """

    __slots__ = (
        "servers",
        "routable",
        "applied",
        "downtime",
        "_roles",
        "_down_open",
        "_recover_skips",
        "_slow_overlaps",
    )

    def __init__(self, servers, routable) -> None:
        self.servers = servers
        self.routable = routable
        self.applied: list[FaultEvent] = []
        self.downtime = 0.0
        self._roles: dict = {}  # crashed server -> role at crash time
        self._down_open: dict = {}  # crashed-while-routable server -> crash time
        self._recover_skips: dict = {}  # server -> recovers to swallow
        self._slow_overlaps: dict = {}  # server -> restores to swallow

    def apply(self, ev: FaultEvent, now: float, horizon: float, kill_in_flight) -> None:
        server = self.servers[ev.server_index]
        kind = ev.kind
        if kind == "crash":
            if server.dead:
                # Overlapping crash window: extend the outage by one
                # scheduled recover (permanent crashes schedule none,
                # pinning the replica dead).
                self._recover_skips[server] = self._recover_skips.get(server, 0) + 1
                self.applied.append(ev)
                return
            if server.draining:
                role = "draining"
            elif server.active:
                role = "routable"
            else:
                role = "standby"
            if role == "routable":
                lst = self.routable.get(server.model_name)
                if lst is not None and server in lst:
                    lst.remove(server)
                self._down_open[server] = now
            self._roles[server] = role
            # Events can fire past the horizon while the heap drains;
            # active-time accounting stops at the horizon (the final
            # settle(horizon) must never see a later start).
            server.settle(min(now, horizon))
            server.active = False
            server.draining = False
            server.dead = True
            self.applied.append(ev)
            kill_in_flight(server, now)
        elif kind == "recover":
            if not server.dead:
                return
            skips = self._recover_skips.get(server, 0)
            if skips:
                # An overlapping crash claimed this recover; stay down.
                self._recover_skips[server] = skips - 1
                return
            server.dead = False
            self.applied.append(ev)
            t0 = self._down_open.pop(server, None)
            if t0 is not None:
                self.downtime += max(0.0, min(now, horizon) - min(t0, horizon))
            role = self._roles.pop(server, "standby")
            if role == "routable":
                server.active = True
                server._active_since = min(now, horizon)
                lst = self.routable.get(server.model_name)
                if lst is not None:
                    lst.append(server)
            # standby/draining replicas come back cold; the autoscaler
            # may re-activate them.
        elif kind == "slow":
            if server.slow_factor != 1.0:
                # Overlapping episode: newest factor wins, and the
                # superseded episode's restore must not end it early.
                self._slow_overlaps[server] = self._slow_overlaps.get(server, 0) + 1
            server.slow_factor = ev.factor
            server.pipeline.service_scale = ev.factor
            self.applied.append(ev)
        else:  # restore
            if server.slow_factor == 1.0:
                return
            skips = self._slow_overlaps.get(server, 0)
            if skips:
                self._slow_overlaps[server] = skips - 1
                return
            server.slow_factor = 1.0
            server.pipeline.service_scale = 1.0
            self.applied.append(ev)

    def close(self, horizon: float) -> float:
        """Fold still-open outages up to the horizon; return downtime."""
        for _server, t0 in self._down_open.items():
            self.downtime += max(0.0, horizon - min(t0, horizon))
        self._down_open.clear()
        return self.downtime


# ----------------------------------------------------------------------
# The fault-aware event loop
# ----------------------------------------------------------------------


def _materialized_faults(sim, num_servers: int, end_hint: float | None):
    """Expand the run's schedule against the replay-horizon hint.

    Materialized traces pass their exact last-arrival time; streamed
    sources pass their nominal ``end_s``.  Scripted events ignore the
    horizon entirely, so only stochastic schedules require one -- they
    refuse a horizon-less stream instead of drawing forever.
    """
    schedule = sim.faults
    if schedule is None:
        return ()
    if schedule.stochastic_params is not None and (
        end_hint is None or end_hint == float("inf")
    ):
        raise ValueError(
            "stochastic fault schedules need a replay horizon: pass a "
            "materialized trace or an arrival source exposing end_s "
            "(FleetArrivals and the synthetic processes all do)"
        )
    return schedule.materialize(
        num_servers, end_hint if end_hint is not None else 0.0, seed=sim._seed
    )


def iter_boundaries(fault_events, window_s: float, last_t: float):
    """Merge fault events with the autoscaler tick grid, in pop order.

    Yields ``("tick", time)`` and ``("fault", event)`` items exactly as
    the per-event loop would pop them: ticks live at ``window_s``
    multiples (built by repeated addition, the same float sequence the
    re-push produces) and fire only while strictly before the last
    arrival (the tick that pops at or past it is skipped and never
    re-pushed); fault events keep their materialized order, including
    equal-time groups; on an exact time tie the tick wins (its heap
    sequence number is -1, below every fault's).  Fault events *after*
    the last arrival still fire -- the heap drains past the horizon.

    ``window_s <= 0`` disables the tick grid (no autoscaler).  This is
    the segment skeleton of the vectorized fault path
    (:func:`repro.sim.fast_core.run_vectorized_faults`): everything
    between two yielded items is fault-free and tick-free, so whole
    arrival spans can be routed and delivered in batches.
    """
    tick_t = window_s if window_s > 0.0 else float("inf")
    fi = 0
    nf = len(fault_events)
    while True:
        ft = fault_events[fi].time_s if fi < nf else float("inf")
        if tick_t < last_t and tick_t <= ft:
            yield ("tick", tick_t)
            tick_t += window_s
        elif fi < nf:
            yield ("fault", fault_events[fi])
            fi += 1
        else:
            return


def run_fault_loop(
    sim,
    arrivals,
    first,
    streams: dict,
    heap,
    warmup_s: float,
    end_hint: float | None,
    scaling: bool,
    completions: dict,
    dropped: dict,
    window_lat: dict,
    window_arrivals: dict,
    window_drops: dict,
    scale_events: list,
) -> dict:
    """Fault-aware twin of ``FleetSimulator._run_loop``.

    Runs the same lazily-pulled arrival-merge event loop with
    crash/recover/slow handling, retries, and hedging layered on.
    With an empty schedule it performs the identical float operations
    in the identical order (same heap sequence numbers, same routing
    draws), which the differential tests verify with ``==`` on floats.

    Two variants share this entry point:

    - With ``retries == 0``, hedging off, and no tracing observer, the
      *light* loop runs: per query it is the fault-free hot loop verbatim
      (no per-query
      records -- crash victims simply fail), so an empty or sparse
      schedule costs almost nothing.  ``last_query_log`` stays empty.
    - Otherwise the *tracked* loop runs: every query gets a
      :class:`TrackedQuery` with per-attempt history, enabling retries,
      hedging, and the full query log.

    Returns the fault accounting consumed by ``_summarize``:
    per-model ``failed``/``retried``/``hedged`` counts, the applied
    atomic events, the fleet availability, the per-query log, and the
    stream accounting (``arrivals``/``horizon``/``ticks``).
    """
    probe = sim.observer
    trace_on = probe is not None and probe.trace
    if sim.retries == 0 and sim.hedge_ms is None and not trace_on:
        return _run_light_loop(
            sim, arrivals, first, streams, heap, warmup_s, end_hint,
            scaling, completions, dropped, window_lat, window_arrivals,
            window_drops, scale_events,
        )
    # One pre-bound bool guards every metrics hook; trace-only probes
    # keep it False (spans are built post-run from the query log).
    probe_on = probe is not None and probe.metrics
    events = heap.items
    dead = heap.dead
    finished: list = []
    servers = sim.servers
    routable = sim._routable
    retry_budget = sim.retries
    hedge_s = sim.hedge_ms * 1e-3 if sim.hedge_ms is not None else None
    horizon = float("inf")
    count = 0
    ticks = 0
    window_s = sim.autoscaler.window_s if scaling else 0.0

    log: list[TrackedQuery] = []
    failed: dict[str, int] = {m: 0 for m in completions}
    retried: dict[str, int] = {m: 0 for m in completions}
    hedged: dict[str, int] = {m: 0 for m in completions}
    window_failures: dict[str, int] = {m: 0 for m in window_drops}
    fstate = _FaultState(servers, routable)

    for ev in _materialized_faults(sim, len(servers), end_hint):
        heap.push(ev.time_s, _FAULT, 0, ev)

    # -- helpers -------------------------------------------------------

    def dispatch(tracked: TrackedQuery, server, now: float) -> None:
        """Start one attempt of ``tracked`` on ``server`` at ``now``."""
        attempt = [server, now, None, 0]
        tracked.attempts.append(attempt)
        server.outstanding += 1
        query = tracked.query
        direct = server.direct
        if direct is not None:
            factor = server.slow_factor
            if factor == 1.0:
                done = direct.completion_time(now, query.size, query.pooling_scale)
            else:
                done = direct.completion_time_slowed(
                    now, query.size, query.pooling_scale, factor
                )
            # Inlined heap.push: this is the per-arrival hot path.
            seq = heap.seq
            heap.seq = seq + 1
            heappush(events, (done, seq, server, -1, (tracked, attempt)))
        else:
            qs = _FaultQueryState(query, tracked.model)
            qs.server = server
            qs.tracked = tracked
            qs.attempt = attempt
            server.pipeline.enqueue(0, qs, qs.size, now, heap)
        if hedge_s is not None and tracked.hedge_state == 0:
            tracked.hedge_state = 1
            heap.push(now + hedge_s, _HEDGE, 0, tracked)

    def complete(server, tracked: TrackedQuery, attempt: list, now: float) -> None:
        """Retire one finished attempt (same bookkeeping as the fast loop)."""
        attempt[2] = now
        attempt[3] = 1
        query = tracked.query
        arrival = query.arrival_s
        server.completed += 1
        if arrival >= warmup_s and now <= horizon:
            server.completed_in_window += 1
        server.items_done += query.size
        server.outstanding -= 1
        if tracked.outcome == 0:
            tracked.outcome = 1
            tracked.finish_s = now
            latency = now - arrival
            completions[tracked.model].append((now, latency))
            if scaling:
                window_lat[tracked.model].append(latency * 1e3)
            if probe_on:
                probe.on_completion(tracked.model, latency, now)
        if server.draining and server.outstanding == 0:
            server.settle(now)
            server.active = False
            server.draining = False

    def resolve_lost(tracked: TrackedQuery, now: float) -> None:
        """A query lost its last outstanding attempt: retry or fail.

        Counters use the same measurement window as completions
        (query arrived after warmup, resolved by the horizon), so the
        failed/retried populations stay consistent with the measured
        one; the autoscaler's window feed stays unfiltered, like drops.
        """
        model = tracked.model
        stream = streams.get(model)
        if tracked.retries < retry_budget and stream and stream[0]:
            tracked.retries += 1
            # Attributed to the query: counted whenever the query is in
            # the measured population, wherever the retry lands in time.
            if tracked.query.arrival_s >= warmup_s:
                retried[model] = retried.get(model, 0) + 1
            candidates, policy = stream
            dispatch(tracked, policy.choose(candidates), now)
        else:
            tracked.outcome = 2  # failed
            # Failures enter violation_rate/goodput denominators, so
            # they use the completions measurement window exactly.
            if tracked.query.arrival_s >= warmup_s and now <= horizon:
                failed[model] = failed.get(model, 0) + 1
            if scaling:
                window_failures[model] = window_failures.get(model, 0) + 1
            if probe_on:
                probe.on_failure(model, now)

    def fire_hedge(tracked: TrackedQuery, now: float) -> None:
        tracked.hedge_state = 0  # timer consumed (re-armed on a retry)
        if tracked.outcome != 0:
            return
        stream = streams.get(tracked.model)
        if not stream or not stream[0]:
            return
        candidates, policy = stream
        attempted = {a[0] for a in tracked.attempts}
        fresh = [s for s in candidates if s not in attempted]
        if not fresh:
            return
        # Domain-aware placement: a correlated rack failure must not be
        # able to kill both attempts, so prefer a replica in a fault
        # domain the query has not touched (falling back to any untried
        # replica only when every live one shares an attempted domain).
        # Without declared domains every replica is a singleton domain
        # and this filter is exactly the untried set.
        fresh = prefer_other_domains(fresh, {a[0].domain for a in tracked.attempts})
        tracked.hedge_state = 2  # hedged
        if tracked.query.arrival_s >= warmup_s:
            hedged[tracked.model] = hedged.get(tracked.model, 0) + 1
        dispatch(tracked, policy.choose(fresh), now)

    def kill_in_flight(server, now: float) -> None:
        """Cancel a crashed replica's work: heap events (lazy deletion)
        and queued units; re-route or fail every query that lost its
        last outstanding attempt."""
        victims: dict[int, tuple] = {}
        for item in events:
            if item[2] is server and item[1] not in dead:
                dead.add(item[1])
                if item[3] < 0:
                    tr, at = item[4]
                    victims[id(at)] = (tr, at)
                else:
                    for unit in item[4]:
                        qs = unit[0]
                        victims[id(qs.attempt)] = (qs.tracked, qs.attempt)
        for queue in server.pipeline.queues:
            for unit in queue:
                qs = unit[0]
                victims[id(qs.attempt)] = (qs.tracked, qs.attempt)
        server.pipeline.reset()
        if server.direct is not None:
            server.direct.reset()
        server.outstanding = 0
        for tr, at in victims.values():
            at[2] = now  # kill timestamp (the tracer's attempt end)
            at[3] = 2  # killed
        for tr, at in victims.values():
            if tr.outcome != 0:
                continue
            if any(a[3] == 0 for a in tr.attempts):
                continue  # a hedge sibling is still racing
            resolve_lost(tr, now)

    # -- the loop ------------------------------------------------------

    nxt = first
    nxt_t = first[1][1]  # arrival_s via the namedtuple fast path
    while True:
        # -- next event: arrival stream vs heap, arrivals win ties --
        if nxt is not None:
            now = nxt_t
            if not events or now <= events[0][0]:
                model, query = nxt
                nxt = next(arrivals, None)
                if nxt is None:
                    horizon = now
                    sim._seal_sketches(now)
                else:
                    t = nxt[1][1]
                    if t < now:
                        raise ValueError(
                            "arrival stream is not sorted by time "
                            f"(t={t!r} after t={now!r})"
                        )
                    nxt_t = t
                count += 1
                if probe_on:
                    probe.on_arrival(model, now)
                stream = streams.get(model)
                if not stream or not stream[0]:
                    tracked = TrackedQuery(query, model)
                    tracked.outcome = 3  # dropped
                    log.append(tracked)
                    if model not in completions:
                        completions[model] = []
                    if now >= warmup_s:
                        dropped[model] = dropped.get(model, 0) + 1
                    if scaling:
                        window_drops[model] = window_drops.get(model, 0) + 1
                    if probe_on:
                        probe.on_drop(model, now)
                    continue
                candidates, policy = stream
                server = policy.choose(candidates)
                if scaling:
                    window_arrivals[model] += 1
                tracked = TrackedQuery(query, model)
                log.append(tracked)
                dispatch(tracked, server, now)
                continue
        elif not events:
            break
        entry = heappop(events)
        if dead and entry[1] in dead:
            dead.discard(entry[1])
            continue
        now = entry[0]
        owner = entry[2]
        if owner is None:  # autoscaler tick (shared with the fast loop)
            if now >= horizon:
                continue  # stream drained past the last arrival
            ticks += 1
            heappush(events, (now + window_s, -1, None, 0, None))
            sim._apply_autoscaler_tick(
                now, window_lat, window_arrivals, window_drops, scale_events,
                window_failures=window_failures,
            )
            continue
        if owner is _FAULT:
            fstate.apply(entry[4], now, horizon, kill_in_flight)
            continue
        if owner is _HEDGE:
            fire_hedge(entry[4], now)
            continue
        server = owner
        if entry[3] < 0:  # direct-path attempt completion, inlined
            tracked, attempt = entry[4]
            attempt[2] = now
            attempt[3] = 1
            query = tracked.query
            arrival = query.arrival_s
            server.completed += 1
            if arrival >= warmup_s and now <= horizon:
                server.completed_in_window += 1
            server.items_done += query.size
            server.outstanding -= 1
            if tracked.outcome == 0:
                tracked.outcome = 1
                tracked.finish_s = now
                latency = now - arrival
                completions[tracked.model].append((now, latency))
                if scaling:
                    window_lat[tracked.model].append(latency * 1e3)
                if probe_on:
                    probe.on_completion(tracked.model, latency, now)
            if server.draining and server.outstanding == 0:
                server.settle(now)
                server.active = False
                server.draining = False
            continue
        server.pipeline.on_finish(entry[3], entry[4], now, heap, finished)
        if finished:
            for qs in finished:
                complete(server, qs.tracked, qs.attempt, now)
            finished.clear()

    return {
        "failed": failed,
        "retried": retried,
        "hedged": hedged,
        "events": tuple(fstate.applied),
        "downtime_s": fstate.close(horizon),
        "log": tuple(log),
        "arrivals": count,
        "horizon": horizon,
        "ticks": ticks,
    }


def _run_light_loop(
    sim,
    arrivals,
    first,
    streams: dict,
    heap,
    warmup_s: float,
    end_hint: float | None,
    scaling: bool,
    completions: dict,
    dropped: dict,
    window_lat: dict,
    window_arrivals: dict,
    window_drops: dict,
    scale_events: list,
) -> dict:
    """The no-retries/no-hedging fault loop.

    Per query this is the fault-free hot loop verbatim -- identical
    payload shapes, allocations, and float operations, the same lazy
    arrival pull -- with fault events handled between queries.
    In-flight queries on a crashed replica are *failed* (there is no
    retry budget to spend), so no per-query record is ever allocated
    and a present-but-idle fault layer costs only the sentinel checks
    at event pops.
    """
    events = heap.items
    dead = heap.dead
    finished: list = []
    servers = sim.servers
    routable = sim._routable
    horizon = float("inf")
    count = 0
    ticks = 0
    window_s = sim.autoscaler.window_s if scaling else 0.0
    # Same single-bool hook guard as the fault-free loop; a tracing
    # observer never reaches here (run_fault_loop forces the tracked
    # twin), so only metrics hooks exist.
    probe = sim.observer
    probe_on = probe is not None and probe.metrics

    failed: dict[str, int] = {m: 0 for m in completions}
    window_failures: dict[str, int] = {m: 0 for m in window_drops}
    fstate = _FaultState(servers, routable)

    for ev in _materialized_faults(sim, len(servers), end_hint):
        heap.push(ev.time_s, _FAULT, 0, ev)

    def kill_in_flight(server, now: float) -> None:
        """Cancel a crashed replica's work; without a retry budget
        every lost query fails at the crash timestamp.  The failed
        counter uses the completions measurement window (arrival after
        warmup, resolved by the horizon); the autoscaler feed does not.
        """
        victims: dict[int, tuple] = {}
        for item in events:
            if item[2] is server and item[1] not in dead:
                dead.add(item[1])
                if item[3] < 0:
                    model, query = item[4]
                    victims[id(query)] = (model, query.arrival_s)
                else:
                    for unit in item[4]:
                        qs = unit[0]
                        victims[id(qs)] = (qs.model, qs.arrival_s)
        for queue in server.pipeline.queues:
            for unit in queue:
                qs = unit[0]
                victims[id(qs)] = (qs.model, qs.arrival_s)
        server.pipeline.reset()
        if server.direct is not None:
            server.direct.reset()
        server.outstanding = 0
        for model, arrival in victims.values():
            if arrival >= warmup_s and now <= horizon:
                failed[model] = failed.get(model, 0) + 1
            if scaling:
                window_failures[model] = window_failures.get(model, 0) + 1
            if probe_on:
                probe.on_failure(model, now)

    # -- the loop (the fault-free hot loop plus sentinel branches) -----
    nxt = first
    nxt_t = first[1][1]  # arrival_s via the namedtuple fast path
    while True:
        if nxt is not None:
            now = nxt_t
            if not events or now <= events[0][0]:
                model, query = nxt
                nxt = next(arrivals, None)
                if nxt is None:
                    horizon = now
                    sim._seal_sketches(now)
                else:
                    t = nxt[1][1]
                    if t < now:
                        raise ValueError(
                            "arrival stream is not sorted by time "
                            f"(t={t!r} after t={now!r})"
                        )
                    nxt_t = t
                count += 1
                if probe_on:
                    probe.on_arrival(model, now)
                stream = streams.get(model)
                if not stream or not stream[0]:
                    if model not in completions:
                        completions[model] = []
                    if now >= warmup_s:
                        dropped[model] = dropped.get(model, 0) + 1
                    if scaling:
                        window_drops[model] = window_drops.get(model, 0) + 1
                    if probe_on:
                        probe.on_drop(model, now)
                    continue
                candidates, policy = stream
                server = policy.choose(candidates)
                server.outstanding += 1
                if scaling:
                    window_arrivals[model] += 1
                direct = server.direct
                if direct is not None:
                    factor = server.slow_factor
                    if factor == 1.0:
                        done = direct.completion_time(
                            now, query.size, query.pooling_scale
                        )
                    else:
                        done = direct.completion_time_slowed(
                            now, query.size, query.pooling_scale, factor
                        )
                    seq = heap.seq
                    heap.seq = seq + 1
                    heappush(events, (done, seq, server, -1, (model, query)))
                else:
                    qs = QueryState(query, model)
                    qs.server = server
                    server.pipeline.enqueue(0, qs, qs.size, now, heap)
                continue
        elif not events:
            break
        entry = heappop(events)
        if dead and entry[1] in dead:
            dead.discard(entry[1])
            continue
        now = entry[0]
        server = entry[2]
        if server is None:  # autoscaler tick (shared with the fast loop)
            if now >= horizon:
                continue  # stream drained past the last arrival
            ticks += 1
            heappush(events, (now + window_s, -1, None, 0, None))
            sim._apply_autoscaler_tick(
                now, window_lat, window_arrivals, window_drops, scale_events,
                window_failures=window_failures,
            )
            continue
        if server is _FAULT:
            fstate.apply(entry[4], now, horizon, kill_in_flight)
            continue
        idx = entry[3]
        if idx < 0:  # direct-path completion (identical to the fast loop)
            model, query = entry[4]
            arrival = query.arrival_s
            server.completed += 1
            if arrival >= warmup_s and now <= horizon:
                server.completed_in_window += 1
            server.items_done += query.size
            server.outstanding -= 1
            latency = now - arrival
            completions[model].append((now, latency))
            if scaling:
                window_lat[model].append(latency * 1e3)
            if probe_on:
                probe.on_completion(model, latency, now)
            if server.draining and server.outstanding == 0:
                server.settle(now)
                server.active = False
                server.draining = False
            continue
        server.pipeline.on_finish(idx, entry[4], now, heap, finished)
        if finished:
            for qs in finished:
                server.completed += 1
                if qs.arrival_s >= warmup_s and now <= horizon:
                    server.completed_in_window += 1
                server.items_done += qs.size
                server.outstanding -= 1
                latency = now - qs.arrival_s
                completions[qs.model].append((now, latency))
                if scaling:
                    window_lat[qs.model].append(latency * 1e3)
                if probe_on:
                    probe.on_completion(qs.model, latency, now)
                if server.draining and server.outstanding == 0:
                    server.settle(now)
                    server.active = False
                    server.draining = False
            finished.clear()

    return {
        "failed": failed,
        "retried": {m: 0 for m in completions},
        "hedged": {m: 0 for m in completions},
        "events": tuple(fstate.applied),
        "downtime_s": fstate.close(horizon),
        "log": (),
        "arrivals": count,
        "horizon": horizon,
        "ticks": ticks,
    }
