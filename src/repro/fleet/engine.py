"""Request-level discrete-event simulation of a whole serving fleet.

The single-node simulator answers "what does one server's tail look
like"; this engine answers the cluster question the paper's prototype
measures with its load generator (Fig. 13): given a provisioned
allocation, a routing policy, and a shared diurnal multi-model trace,
what p50/p99, SLA-violation rate, and power does the *fleet* deliver?

Design notes (performance matters -- 50 servers x 100k queries must
stay interactive):

- One global event heap drives every server; each replica keeps only
  cheap per-stage state (deque + free-unit count), so the cost per
  event is independent of fleet size.
- Stage pipelines and closed-form timings are memoized per
  (server type, model, plan) through :mod:`repro.sim.plan_cache`;
  fifty replicas of the same triple share one evaluation.
- Queries are routed at arrival by a per-model
  :class:`~repro.fleet.routing.RoutingPolicy`; an optional
  :class:`~repro.fleet.autoscaler.ReactiveAutoscaler` activates or
  drains replicas between provisioning intervals based on windowed
  SLA-violation rates.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Sequence

from repro.cluster.state import Allocation
from repro.fleet.report import FleetResult, ModelStats, ServerStats
from repro.fleet.routing import RoutingPolicy, make_policy
from repro.hardware.power import ComponentUtilization
from repro.hardware.server import ServerType, get_server_type
from repro.models.zoo import RecommendationModel
from repro.scheduling.profiler import ClassificationTable
from repro.sim import plan_cache
from repro.sim.evaluator import PlanTimings
from repro.sim.loadgen import generate_trace
from repro.sim.queries import Query, QueryWorkload
from repro.sim.server_sim import SimStage, enqueue_units, form_batch

__all__ = [
    "FleetServer",
    "FleetSimulator",
    "build_fleet",
    "build_fleet_trace",
    "diurnal_segments",
]


class FleetServer:
    """One provisioned replica: a stage pipeline plus runtime state.

    The stage tuple and timings are shared (read-only) across every
    replica of the same (server type, model, plan); queues, free-unit
    counts, and counters are per-replica.
    """

    __slots__ = (
        "index",
        "server_type",
        "model_name",
        "plan",
        "stages",
        "timings",
        "weight",
        "queues",
        "free",
        "outstanding",
        "completed",
        "completed_in_window",
        "items_done",
        "active",
        "draining",
        "active_s",
        "_active_since",
        "wrr_current",
    )

    def __init__(
        self,
        index: int,
        server_type: ServerType,
        model_name: str,
        plan,
        stages: Sequence[SimStage],
        timings: PlanTimings,
        weight: float,
        active: bool = True,
    ) -> None:
        self.index = index
        self.server_type = server_type
        self.model_name = model_name
        self.plan = plan
        self.stages = tuple(stages)
        self.timings = timings
        self.weight = weight  # profiled latency-bounded QPS
        self.queues: list[deque] = [deque() for _ in self.stages]
        self.free: list[int] = [s.units for s in self.stages]
        self.outstanding = 0
        self.completed = 0
        self.completed_in_window = 0
        self.items_done = 0
        self.active = active
        self.draining = False
        self.active_s = 0.0
        self._active_since = 0.0 if active else None
        self.wrr_current = 0.0

    def settle(self, now: float) -> None:
        """Fold any open activation window into ``active_s``."""
        if self._active_since is not None:
            self.active_s += now - self._active_since
            self._active_since = None

    def power_w(self) -> float:
        """Wall power over the replica's active window (idle if unused)."""
        if self.active_s <= 0.0:
            return 0.0
        items_per_s = self.items_done / self.active_s
        server = self.server_type
        t = self.timings
        cpu = min(1.0, items_per_s * t.cpu_core_s_per_item / server.cpu.cores)
        gpu = min(1.0, items_per_s * t.gpu_busy_s_per_item)
        mem = min(1.0, items_per_s * t.mem_bytes_per_item / server.memory.peak_bw_bytes)
        return server.power_w(
            ComponentUtilization(cpu=cpu, memory=mem, gpu=gpu * t.gpu_power_util_scale)
        )


class _QState:
    __slots__ = ("query", "model", "server", "pending_units")

    def __init__(self, query: Query, model: str) -> None:
        self.query = query
        self.model = model
        self.server: FleetServer | None = None
        self.pending_units = 0


def build_fleet(
    allocation: Allocation,
    table: ClassificationTable,
    models: dict[str, RecommendationModel],
    workloads: dict[str, QueryWorkload] | None = None,
    standby: Allocation | None = None,
) -> list[FleetServer]:
    """Instantiate replicas for a scheduler's allocation.

    Every (server type, model) cell becomes ``count`` replicas running
    the plan the offline profiler recorded for that pair; ``standby``
    adds inactive replicas the autoscaler may bring online.
    """
    servers: list[FleetServer] = []

    def instantiate(alloc: Allocation, active: bool) -> None:
        for (srv_name, model_name), count in sorted(alloc.counts.items()):
            tup = table.get(srv_name, model_name)
            if tup.plan is None:
                raise ValueError(
                    f"({srv_name}, {model_name}) has no feasible plan to replay"
                )
            model = models[model_name]
            workload = (workloads or {}).get(
                model_name
            ) or QueryWorkload.for_model(model.config.mean_query_size)
            server_type = get_server_type(srv_name)
            stages = plan_cache.stages_for(server_type, model, workload, tup.plan)
            timings = plan_cache.timings_for(server_type, model, workload, tup.plan)
            for _ in range(count):
                servers.append(
                    FleetServer(
                        index=len(servers),
                        server_type=server_type,
                        model_name=model_name,
                        plan=tup.plan,
                        stages=stages,
                        timings=timings,
                        weight=tup.qps,
                        active=active,
                    )
                )

    instantiate(allocation, active=True)
    if standby is not None:
        instantiate(standby, active=False)
    return servers


def diurnal_segments(
    trace, duration_s: float, steps: int = 24, load_scale: float = 1.0
) -> list[tuple[float, float]]:
    """Compress a one-day diurnal profile into ``duration_s`` seconds.

    Returns ``(qps, segment_duration)`` pairs: instantaneous rates keep
    their diurnal shape while the day is replayed in compressed time.
    """
    if duration_s <= 0 or steps < 1:
        raise ValueError("need positive duration and at least one segment")
    seg = duration_s / steps
    return [
        (max(trace.load_at(24.0 * i / steps) * load_scale, 1e-9), seg)
        for i in range(steps)
    ]


def build_fleet_trace(
    workloads: dict[str, QueryWorkload],
    segments: dict[str, Sequence[tuple[float, float]]],
    seed: int = 0,
) -> list[tuple[str, Query]]:
    """Merge per-model Poisson segments into one arrival-sorted trace.

    Args:
        workloads: Query-size/pooling distributions per model.
        segments: Per-model ``(qps, duration_s)`` chain; segments are
            laid back to back starting at t=0.
        seed: Base RNG seed (each model/segment draws independently).
    """
    merged: list[tuple[str, Query]] = []
    for m_idx, (model, segs) in enumerate(sorted(segments.items())):
        workload = workloads[model]
        clock = 0.0
        next_id = 0
        for s_idx, (qps, dur) in enumerate(segs):
            if qps > 0 and dur > 0:
                queries = generate_trace(
                    workload,
                    qps,
                    dur,
                    seed=seed + 7919 * m_idx + s_idx,
                    start_s=clock,
                    first_id=next_id,
                )
                merged.extend((model, q) for q in queries)
                next_id += len(queries)
            clock += dur
    merged.sort(key=lambda mq: mq[1].arrival_s)
    return merged


class FleetSimulator:
    """Event-driven execution of a replica fleet over a multi-model trace.

    Args:
        servers: Replicas from :func:`build_fleet` (active + standby).
        policy: Routing-policy registry name; one independent policy
            instance is created per model stream.
        sla_ms: Per-model SLA targets for violation accounting (and the
            autoscaler's trigger).
        autoscaler: Optional reactive scaler consulted every window.
        seed: Seed for policy randomness (p2c sampling).
    """

    def __init__(
        self,
        servers: Sequence[FleetServer],
        policy: str | RoutingPolicy = "p2c",
        sla_ms: dict[str, float] | None = None,
        autoscaler=None,
        seed: int = 0,
    ) -> None:
        if not servers:
            raise ValueError("need at least one fleet server")
        self.servers = list(servers)
        self.sla_ms = dict(sla_ms or {})
        self.autoscaler = autoscaler
        self._policy_spec = policy
        self._seed = seed
        self._routable: dict[str, list[FleetServer]] = {}
        self._policies: dict[str, RoutingPolicy] = {}
        model_names = sorted({s.model_name for s in self.servers})
        for i, model in enumerate(model_names):
            self._routable[model] = [
                s for s in self.servers if s.model_name == model and s.active
            ]
            if isinstance(policy, RoutingPolicy):
                if len(model_names) > 1:
                    raise ValueError(
                        "pass a policy name (not an instance) for multi-model "
                        "fleets; policies hold per-stream state"
                    )
                self._policies[model] = policy
            else:
                self._policies[model] = make_policy(policy, seed=seed + i)

    @property
    def policy_name(self) -> str:
        return next(iter(self._policies.values())).name

    def _standby_for(self, model: str) -> list[FleetServer]:
        return [
            s
            for s in self.servers
            if s.model_name == model and not s.active and not s.draining
        ]

    # ------------------------------------------------------------------

    def run(self, trace: Sequence[tuple[str, Query]], warmup_s: float = 0.0) -> FleetResult:
        """Play a multi-model trace through the fleet.

        Args:
            trace: ``(model_name, query)`` pairs (any order; sorted here).
            warmup_s: Initial window excluded from the statistics.
        """
        if not trace:
            raise ValueError("empty fleet trace")
        counter = itertools.count()
        events: list[tuple] = []
        push = lambda t, payload: heapq.heappush(events, (t, next(counter), payload))

        states = [_QState(q, model) for model, q in trace]
        for st in states:
            push(st.query.arrival_s, st)
        horizon = max(st.query.arrival_s for st in states)

        # Windowed completion/arrival/drop feeds for the autoscaler.
        window_lat: dict[str, list[float]] = {m: [] for m in self._routable}
        window_arrivals: dict[str, int] = {m: 0 for m in self._routable}
        window_drops: dict[str, int] = {m: 0 for m in self._routable}
        scale_events: list = []
        if self.autoscaler is not None:
            w = self.autoscaler.window_s
            t = w
            while t < horizon:
                push(t, ("tick",))
                t += w

        # Track every model the trace names, so streams with no replica
        # anywhere in the fleet still surface as dropped/violating.
        trace_models = {st.model for st in states}
        completions: dict[str, list[tuple[float, float]]] = {
            m: [] for m in set(self._routable) | trace_models
        }
        dropped: dict[str, int] = {m: 0 for m in completions}
        scaling = self.autoscaler is not None

        def enqueue(server: FleetServer, idx: int, qs: _QState, now: float) -> None:
            enqueue_units(server.stages[idx], server.queues[idx], qs, qs.query.size)
            dispatch(server, idx, now)

        def dispatch(server: FleetServer, idx: int, now: float) -> None:
            stage = server.stages[idx]
            queue = server.queues[idx]
            free = server.free
            while free[idx] > 0 and queue:
                batch, items, pooling = form_batch(stage, queue)
                service = stage.service_s(items, pooling)
                free[idx] -= 1
                push(now + service, (server, idx, batch))

        def complete(qs: _QState, now: float) -> None:
            server = qs.server
            server.completed += 1
            if qs.query.arrival_s >= warmup_s and now <= horizon:
                server.completed_in_window += 1
            server.items_done += qs.query.size
            server.outstanding -= 1
            completions[qs.model].append((now, now - qs.query.arrival_s))
            if scaling:
                window_lat[qs.model].append((now - qs.query.arrival_s) * 1e3)
            if server.draining and server.outstanding == 0:
                server.settle(now)
                server.active = False
                server.draining = False

        while events:
            now, _, payload = heapq.heappop(events)
            if isinstance(payload, _QState):
                qs = payload
                candidates = self._routable.get(qs.model)
                if not candidates:
                    # Warmup drops stay out of the stats (mirroring the
                    # completion window) but still feed the autoscaler.
                    if now >= warmup_s:
                        dropped[qs.model] = dropped.get(qs.model, 0) + 1
                    if scaling:
                        window_drops[qs.model] = window_drops.get(qs.model, 0) + 1
                    continue
                server = self._policies[qs.model].choose(candidates)
                qs.server = server
                server.outstanding += 1
                if scaling:
                    window_arrivals[qs.model] += 1
                enqueue(server, 0, qs, now)
            elif payload[0] == "tick":
                decisions = self.autoscaler.tick(
                    now,
                    window_lat,
                    window_arrivals,
                    self._routable,
                    self._standby_for,
                    window_drops=window_drops,
                )
                for event in decisions:
                    scale_events.append(event)
                    server = event.server
                    if event.action == "activate":
                        server.active = True
                        server.draining = False
                        server._active_since = now
                        self._routable[server.model_name].append(server)
                    else:  # drain
                        self._routable[server.model_name].remove(server)
                        server.draining = True
                        if server.outstanding == 0:
                            server.settle(now)
                            server.active = False
                            server.draining = False
                for m in window_lat:
                    window_lat[m] = []
                    window_arrivals[m] = 0
                for m in window_drops:
                    window_drops[m] = 0
            else:
                server, idx, batch = payload
                server.free[idx] += 1
                last = len(server.stages) - 1
                for qs, _items in batch:
                    qs.pending_units -= 1
                    if qs.pending_units == 0:
                        if idx < last:
                            enqueue(server, idx + 1, qs, now)
                        else:
                            complete(qs, now)
                dispatch(server, idx, now)

        for server in self.servers:
            server.settle(horizon)

        return self._summarize(
            completions, dropped, warmup_s, horizon, tuple(scale_events)
        )

    # ------------------------------------------------------------------

    def _summarize(
        self,
        completions: dict[str, list[tuple[float, float]]],
        dropped: dict[str, int],
        warmup_s: float,
        horizon: float,
        scale_events: tuple,
    ) -> FleetResult:
        import numpy as np

        duration = max(horizon - warmup_s, 1e-9)
        per_model: dict[str, ModelStats] = {}
        for model, samples in completions.items():
            # Measure the window [warmup, horizon]: arrivals before the
            # warmup cut are excluded, and so are completions draining
            # after the last arrival -- otherwise an overloaded fleet
            # would report more than its sustainable throughput.
            measured = [
                lat
                for finish, lat in samples
                if finish - lat >= warmup_s and finish <= horizon
            ]
            sla = self.sla_ms.get(model, float("inf"))
            drops = dropped.get(model, 0)
            if measured:
                arr = np.asarray(measured) * 1e3
                violations = int((arr > sla).sum()) + drops
                per_model[model] = ModelStats(
                    model=model,
                    sla_ms=sla,
                    completed=len(measured),
                    dropped=drops,
                    qps=len(measured) / duration,
                    p50_ms=float(np.percentile(arr, 50)),
                    p95_ms=float(np.percentile(arr, 95)),
                    p99_ms=float(np.percentile(arr, 99)),
                    mean_ms=float(arr.mean()),
                    violation_rate=violations / max(len(measured) + drops, 1),
                )
            else:
                per_model[model] = ModelStats(
                    model=model,
                    sla_ms=sla,
                    completed=0,
                    dropped=drops,
                    qps=0.0,
                    p50_ms=float("inf"),
                    p95_ms=float("inf"),
                    p99_ms=float("inf"),
                    mean_ms=float("inf"),
                    violation_rate=1.0 if drops else 0.0,
                )

        server_stats = []
        total_energy = 0.0
        for s in self.servers:
            power = s.power_w()
            total_energy += power * s.active_s
            server_stats.append(
                ServerStats(
                    index=s.index,
                    server_type=s.server_type.name,
                    model=s.model_name,
                    plan=s.plan.describe(),
                    completed=s.completed,
                    qps=s.completed_in_window / duration if duration > 0 else 0.0,
                    power_w=power,
                    active_s=s.active_s,
                    ever_active=s.active_s > 0,
                )
            )
        return FleetResult(
            policy=self.policy_name,
            duration_s=duration,
            per_model=per_model,
            servers=tuple(server_stats),
            avg_power_w=total_energy / max(horizon, 1e-9),
            scale_events=scale_events,
        )
