"""Request-level discrete-event simulation of a whole serving fleet.

The single-node simulator answers "what does one server's tail look
like"; this engine answers the cluster question the paper's prototype
measures with its load generator (Fig. 13): given a provisioned
allocation, a routing policy, and a shared diurnal multi-model trace,
what p50/p99, SLA-violation rate, and power does the *fleet* deliver?

Design notes (performance matters -- 50 servers x 100k queries must
stay interactive):

- One global event heap drives every server, but arrivals never enter
  it: the engine merges the time-sorted arrival list with the heap
  (:mod:`repro.sim.event_core`), so heap traffic is proportional to
  batch completions only.
- Replicas whose pipeline is a single SPLIT stage -- every CPU
  placement -- run on the event core's :class:`DirectStage`
  recurrence: the query's completion time is computed exactly at
  arrival and one completion event is scheduled, instead of an event
  per sub-batch.  FUSE-bearing (accelerator) pipelines keep the full
  event path, since batch formation there depends on queue state.
- Stage pipelines and closed-form timings are memoized per
  (server type, model, plan) through :mod:`repro.sim.plan_cache`;
  fifty replicas of the same triple share one evaluation *and* one set
  of quantized service-time tables.
- Queries are routed at arrival by a per-model
  :class:`~repro.fleet.routing.RoutingPolicy`; an optional
  :class:`~repro.fleet.autoscaler.ReactiveAutoscaler` activates or
  drains replicas between provisioning intervals based on windowed
  SLA-violation rates.
- Fault injection (crashes, stragglers, retries, hedging) lives in
  :mod:`repro.fleet.faults`: runs with any fault machinery configured
  take the fault-aware twin of the hot loop, while fault-free runs keep
  this module's loop bit-identical to the pre-fault engine
  (``tests/test_perf_equivalence.py`` enforces both).
"""

from __future__ import annotations

import logging
from heapq import heappop, heappush
from typing import Sequence

from repro.cluster.state import Allocation
from repro.fleet.report import (
    FleetResult,
    ModelStats,
    ServerStats,
    fleet_power_summary,
)
from repro.fleet.routing import RoutingPolicy, make_policy
from repro.hardware.power import ComponentUtilization
from repro.hardware.server import ServerType, get_server_type
from repro.models.zoo import RecommendationModel
from repro.scheduling.profiler import ClassificationTable
from repro.sim import plan_cache
from repro.sim.evaluator import PlanTimings
from repro.sim.event_core import DirectStage, EventHeap, Pipeline, QueryState
from repro.sim.queries import Query, QueryWorkload
from repro.traces.arrivals import FleetArrivals, PiecewisePoissonProcess

_LOG = logging.getLogger(__name__)

#: Valid ``FleetSimulator(core=...)`` selections.
FLEET_CORES = ("auto", "python", "vector", "vector-epoch")

__all__ = [
    "FleetServer",
    "FleetSimulator",
    "build_fleet",
    "build_fleet_trace",
    "diurnal_segments",
]


class FleetServer:
    """One provisioned replica: a stage pipeline plus runtime state.

    The stage tuple and timings are shared (read-only) across every
    replica of the same (server type, model, plan); queues, free-unit
    counts, and counters are per-replica.  Single-stage SPLIT pipelines
    additionally get a :class:`DirectStage` fast path (``direct``).
    """

    __slots__ = (
        "index",
        "server_type",
        "model_name",
        "plan",
        "stages",
        "timings",
        "weight",
        "pipeline",
        "direct",
        "outstanding",
        "completed",
        "completed_in_window",
        "items_done",
        "active",
        "draining",
        "dead",
        "slow_factor",
        "domain",
        "active_s",
        "_active_since",
        "active_windows",
        "wrr_current",
    )

    def __init__(
        self,
        index: int,
        server_type: ServerType,
        model_name: str,
        plan,
        stages: Sequence,
        timings: PlanTimings,
        weight: float,
        active: bool = True,
    ) -> None:
        self.index = index
        self.server_type = server_type
        self.model_name = model_name
        self.plan = plan
        self.pipeline = Pipeline(stages, owner=self)
        self.stages = self.pipeline.stages
        self.direct = (
            DirectStage(self.stages[0])
            if len(self.stages) == 1 and not self.stages[0].is_fuse
            else None
        )
        self.timings = timings
        self.weight = weight  # profiled latency-bounded QPS
        self.outstanding = 0
        self.completed = 0
        self.completed_in_window = 0
        self.items_done = 0
        self.active = active
        self.draining = False
        self.dead = False  # crashed by the fault injector
        self.slow_factor = 1.0  # straggler service-time multiplier
        self.domain = index  # fault domain (singleton unless declared)
        self.active_s = 0.0
        self._active_since = 0.0 if active else None
        self.active_windows: list[tuple[float, float]] | None = None
        self.wrr_current = 0.0

    def settle(self, now: float) -> None:
        """Fold any open activation window into ``active_s``.

        When window recording is on (carbon accounting; enabled by the
        simulator) the closed ``[start, now]`` interval is also kept,
        so emissions can price each replica's power over the intervals
        it was actually active.
        """
        if self._active_since is not None:
            self.active_s += now - self._active_since
            if self.active_windows is not None:
                self.active_windows.append((self._active_since, now))
            self._active_since = None

    def power_w(self) -> float:
        """Wall power over the replica's active window (idle if unused)."""
        if self.active_s <= 0.0:
            return 0.0
        items_per_s = self.items_done / self.active_s
        server = self.server_type
        t = self.timings
        cpu = min(1.0, items_per_s * t.cpu_core_s_per_item / server.cpu.cores)
        gpu = min(1.0, items_per_s * t.gpu_busy_s_per_item)
        mem = min(1.0, items_per_s * t.mem_bytes_per_item / server.memory.peak_bw_bytes)
        return server.power_w(
            ComponentUtilization(cpu=cpu, memory=mem, gpu=gpu * t.gpu_power_util_scale)
        )


def build_fleet(
    allocation: Allocation,
    table: ClassificationTable,
    models: dict[str, RecommendationModel],
    workloads: dict[str, QueryWorkload] | None = None,
    standby: Allocation | None = None,
) -> list[FleetServer]:
    """Instantiate replicas for a scheduler's allocation.

    Every (server type, model) cell becomes ``count`` replicas running
    the plan the offline profiler recorded for that pair; ``standby``
    adds inactive replicas the autoscaler may bring online.
    """
    servers: list[FleetServer] = []

    def instantiate(alloc: Allocation, active: bool) -> None:
        for (srv_name, model_name), count in sorted(alloc.counts.items()):
            tup = table.get(srv_name, model_name)
            if tup.plan is None:
                raise ValueError(
                    f"({srv_name}, {model_name}) has no feasible plan to replay"
                )
            model = models[model_name]
            workload = (workloads or {}).get(
                model_name
            ) or QueryWorkload.for_model(model.config.mean_query_size)
            server_type = get_server_type(srv_name)
            stages = plan_cache.serviced_stages_for(
                server_type, model, workload, tup.plan
            )
            timings = plan_cache.timings_for(server_type, model, workload, tup.plan)
            for _ in range(count):
                servers.append(
                    FleetServer(
                        index=len(servers),
                        server_type=server_type,
                        model_name=model_name,
                        plan=tup.plan,
                        stages=stages,
                        timings=timings,
                        weight=tup.qps,
                        active=active,
                    )
                )

    instantiate(allocation, active=True)
    if standby is not None:
        instantiate(standby, active=False)
    return servers


def diurnal_segments(
    trace, duration_s: float, steps: int = 24, load_scale: float = 1.0
) -> list[tuple[float, float]]:
    """Compress a one-day diurnal profile into ``duration_s`` seconds.

    Returns ``(qps, segment_duration)`` pairs: instantaneous rates keep
    their diurnal shape while the day is replayed in compressed time.
    """
    if duration_s <= 0 or steps < 1:
        raise ValueError("need positive duration and at least one segment")
    seg = duration_s / steps
    return [
        (max(trace.load_at(24.0 * i / steps) * load_scale, 1e-9), seg)
        for i in range(steps)
    ]


def build_fleet_trace(
    workloads: dict[str, QueryWorkload],
    segments: dict[str, Sequence[tuple[float, float]]],
    seed: int = 0,
) -> list[tuple[str, Query]]:
    """Merge per-model Poisson segments into one arrival-sorted trace.

    Thin adapter over :mod:`repro.traces`: builds one
    :class:`~repro.traces.PiecewisePoissonProcess` per model and
    materializes the merged :class:`~repro.traces.FleetArrivals`
    stream.  Draw sequence and merge order are bit-identical to the
    historical in-place implementation (pinned by
    ``tests/test_perf_equivalence.py``); pass the ``FleetArrivals``
    object itself to :meth:`FleetSimulator.run` to skip the
    materialization entirely.

    Args:
        workloads: Query-size/pooling distributions per model.
        segments: Per-model ``(qps, duration_s)`` chain; segments are
            laid back to back starting at t=0.
        seed: Base RNG seed (each model/segment draws independently).
    """
    processes = {
        model: PiecewisePoissonProcess(workloads[model], segs)
        for model, segs in segments.items()
    }
    return list(FleetArrivals(processes, seed=seed))


class FleetSimulator:
    """Event-driven execution of a replica fleet over a multi-model trace.

    Args:
        servers: Replicas from :func:`build_fleet` (active + standby).
        policy: Routing-policy registry name; one independent policy
            instance is created per model stream.
        sla_ms: Per-model SLA targets for violation accounting (and the
            autoscaler's trigger).
        autoscaler: Optional reactive scaler consulted every window.
        seed: Seed for policy randomness (p2c sampling) and for
            materializing stochastic fault schedules.
        faults: Optional :class:`~repro.fleet.faults.FaultSchedule`.
            ``None`` (and an empty schedule with no retries/hedging)
            keeps the exact fault-free hot loop.
        retries: Per-query budget of router re-dispatches after a
            crash kills the query's last outstanding attempt.
        hedge_ms: If set, a duplicate attempt is dispatched to a second
            replica once a query has been outstanding this long; the
            query completes at its fastest attempt.
        observer: Optional :class:`~repro.obs.FleetProbe`.  ``None``
            (the default) keeps every loop hook dark -- zero extra
            float operations, pinned bit-identical by
            ``tests/test_perf_equivalence.py``.  A probe with
            ``trace=True`` forces the tracked fault loop so per-query
            spans can be materialized from ``last_query_log``.
        core: Event-core selection.  ``"auto"`` (the default) uses the
            vectorized batch core (:mod:`repro.sim.fast_core`) when the
            run is eligible -- outstanding-oblivious routing (rr /
            weighted), no retries/hedging/tracing (plain fault
            schedules are fine: they run the segmented vectorized
            fault path, bit-identical to the python light loop), no
            observer, numpy importable -- and otherwise falls back to
            the exact per-event python core, logging every applicable
            reason once.  ``"python"`` forces the per-event core;
            ``"vector"`` demands the vectorized core and raises
            ``ValueError`` listing *all* ineligibility reasons instead
            of silently degrading.  ``"vector-epoch"`` additionally
            admits queue-aware routing (least / p2c) by routing
            arrival micro-epochs against per-replica queue snapshots
            (see ``epoch_ms``); its reports are *statistically* --
            not bit-for-bit -- equivalent to the python core, so
            ``"auto"`` never selects it.  See ``docs/performance.md``
            for the selection matrix and the float-reordering caveat.
        epoch_ms: Micro-epoch width for ``core="vector-epoch"``, in
            milliseconds (default 5.0).  Arrivals within one epoch of
            the epoch's first unrouted arrival are routed together
            against a queue snapshot refreshed at the epoch start;
            epochs never span an autoscaler tick.  Smaller epochs
            track the python core more closely at lower speedup.
            Ignored by every other core.
        percentile_mode: How the report's latency percentiles are
            computed.  ``"exact"`` (the default) stores every measured
            latency and runs ``numpy.percentile`` -- bit-identical to
            every prior release, O(queries) memory.  ``"sketch"`` folds
            completions into P² quantile sketches
            (:mod:`repro.obs.sketch`) as they retire: O(1) memory per
            model, so week-long 10⁸-query replays survive, at the cost
            of estimated p50/p95/p99 (completed/dropped/qps/
            violation-rate stay exact) and an empty ``phases`` tuple.
            Sketch mode requires the per-event python core.
        carbon: Optional :class:`~repro.carbon.CarbonTrace`.  ``None``
            (the default) keeps the engine exactly as before -- no
            window recording, no carbon field, pinned bit-identical by
            ``tests/test_perf_equivalence.py``.  A trace prices the
            run's measured energy in gCO2 (``result.carbon``) and
            requires the per-event python core.
        deferrable: Optional :class:`~repro.carbon.DeferrableJob`
            batch executed on the run's timeline next to the real-time
            traffic (requires ``carbon``); see ``docs/carbon.md``.
        deferrable_policy: Scheduling policy for those jobs, one of
            :data:`~repro.carbon.DEFERRABLE_POLICIES`.
        power_cap_w: Fleet-wide power cap the deferrable executor
            honors (real-time + running jobs; real-time traffic is
            never throttled).  ``None`` = uncapped.
        deferral_horizon_s: Cap on completion slip past each job's
            no-wait finish time (``None`` = the job deadline alone).
    """

    #: Sharded workers set this so the auto-core fallback is logged
    #: once by the parent process instead of once per shard.
    _quiet_core_fallback = False

    def __init__(
        self,
        servers: Sequence[FleetServer],
        policy: str | RoutingPolicy = "p2c",
        sla_ms: dict[str, float] | None = None,
        autoscaler=None,
        seed: int = 0,
        faults=None,
        retries: int = 0,
        hedge_ms: float | None = None,
        observer=None,
        core: str = "auto",
        epoch_ms: float = 5.0,
        percentile_mode: str = "exact",
        carbon=None,
        deferrable: Sequence = (),
        deferrable_policy: str = "no-wait",
        power_cap_w: float | None = None,
        deferral_horizon_s: float | None = None,
    ) -> None:
        if not servers:
            raise ValueError("need at least one fleet server")
        if core not in FLEET_CORES:
            raise ValueError(
                f"unknown core {core!r}; choose from {list(FLEET_CORES)}"
            )
        if percentile_mode not in ("exact", "sketch"):
            raise ValueError(
                f"unknown percentile_mode {percentile_mode!r}; "
                "choose 'exact' or 'sketch'"
            )
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if not epoch_ms > 0.0:
            raise ValueError("epoch_ms must be > 0")
        if hedge_ms is not None and hedge_ms <= 0.0:
            raise ValueError("hedge_ms must be > 0 (or None to disable)")
        deferrable = tuple(deferrable)
        if carbon is None:
            if deferrable:
                raise ValueError(
                    "deferrable jobs need a carbon trace (pass carbon=); "
                    "their policies price run windows against it"
                )
            if power_cap_w is not None:
                raise ValueError(
                    "power_cap_w binds deferrable jobs; pass carbon= and "
                    "deferrable= (real-time traffic is never capped)"
                )
            if deferral_horizon_s is not None:
                raise ValueError(
                    "deferral_horizon_s needs deferrable jobs (and carbon=)"
                )
        else:
            from repro.carbon.deferrable import DEFERRABLE_POLICIES

            if deferrable_policy not in DEFERRABLE_POLICIES:
                raise ValueError(
                    f"unknown deferrable policy {deferrable_policy!r}; "
                    f"one of {', '.join(DEFERRABLE_POLICIES)}"
                )
            if power_cap_w is not None and power_cap_w <= 0.0:
                raise ValueError("power_cap_w must be > 0 (or None)")
            if deferral_horizon_s is not None and deferral_horizon_s < 0.0:
                raise ValueError("deferral_horizon_s must be >= 0 (or None)")
        self.carbon = carbon
        self.deferrable = deferrable
        self.deferrable_policy = deferrable_policy
        self.power_cap_w = power_cap_w
        self.deferral_horizon_s = deferral_horizon_s
        self.last_deferrable_report = None
        self.servers = list(servers)
        if carbon is not None:
            # Record per-replica activation windows so emissions can
            # price each replica's power over the time it was on.
            for s in self.servers:
                s.active_windows = []
        self.sla_ms = dict(sla_ms or {})
        self.autoscaler = autoscaler
        self._policy_spec = policy
        self._seed = seed
        self.faults = faults
        self.retries = int(retries)
        self.hedge_ms = hedge_ms
        self.observer = observer
        self.core = core
        self.epoch_ms = float(epoch_ms)
        self.percentile_mode = percentile_mode
        self._sketch_stats: dict | None = None
        self.last_query_log: tuple = ()
        if faults is not None and getattr(faults, "domains", None) is not None:
            # Stamp the schedule's rack/power-domain assignment onto the
            # replicas; hedged dispatch and standby activation use it to
            # diversify placement across domains.
            for server, dom in zip(self.servers, faults.domain_map(len(self.servers))):
                server.domain = dom
        self._routable: dict[str, list[FleetServer]] = {}
        self._policies: dict[str, RoutingPolicy] = {}
        self.last_event_count = 0
        self.last_tick_count = 0
        model_names = sorted({s.model_name for s in self.servers})
        for i, model in enumerate(model_names):
            self._routable[model] = [
                s for s in self.servers if s.model_name == model and s.active
            ]
            if isinstance(policy, RoutingPolicy):
                if len(model_names) > 1:
                    raise ValueError(
                        "pass a policy name (not an instance) for multi-model "
                        "fleets; policies hold per-stream state"
                    )
                self._policies[model] = policy
            else:
                self._policies[model] = make_policy(policy, seed=seed + i)

    @property
    def policy_name(self) -> str:
        return next(iter(self._policies.values())).name

    def _standby_for(self, model: str) -> list[FleetServer]:
        return [
            s
            for s in self.servers
            if s.model_name == model
            and not s.active
            and not s.draining
            and not s.dead
        ]

    def _apply_autoscaler_tick(
        self,
        now: float,
        window_lat: dict,
        window_arrivals: dict,
        window_drops: dict,
        scale_events: list,
        window_failures: dict | None = None,
    ) -> None:
        """One autoscaler window: tick, apply decisions, reset the feeds.

        Cold path (fires once per window), shared verbatim by the
        fault-free loop and both fault loops so scale-event application
        cannot drift between them.
        """
        routable = self._routable
        dead_domains = None
        if self._fault_mode:
            dead_domains = {s.domain for s in self.servers if s.dead}
        decisions = self.autoscaler.tick(
            now,
            window_lat,
            window_arrivals,
            routable,
            self._standby_for,
            window_drops=window_drops,
            window_failures=window_failures,
            dead_domains=dead_domains,
        )
        if self.observer is not None:
            # Decision point + forecast inputs for the control-plane
            # timeline; cold path, fires once per window.
            self.observer.on_autoscaler_tick(now, decisions, self.autoscaler)
        for event in decisions:
            scale_events.append(event)
            scaled = event.server
            if event.action == "activate":
                scaled.active = True
                scaled.draining = False
                scaled._active_since = now
                routable[scaled.model_name].append(scaled)
            else:  # drain
                routable[scaled.model_name].remove(scaled)
                scaled.draining = True
                if scaled.outstanding == 0:
                    scaled.settle(now)
                    scaled.active = False
                    scaled.draining = False
        for m in window_lat:
            window_lat[m] = []
            window_arrivals[m] = 0
        for m in window_drops:
            window_drops[m] = 0
        if window_failures is not None:
            for m in window_failures:
                window_failures[m] = 0

    @property
    def _fault_mode(self) -> bool:
        """Whether the run needs the fault-aware loop.

        True as soon as any fault machinery could fire: a non-``None``
        schedule (even an empty one forces the fault loop, which the
        differential tests exploit), a retry budget, or hedging.  A
        tracing observer also forces it -- spans are built from the
        tracked loop's per-query log.
        """
        return (
            self.faults is not None
            or self.retries > 0
            or self.hedge_ms is not None
            or (self.observer is not None and self.observer.trace)
        )

    def _vector_fallback_reasons(self, epoch: bool = False) -> list[str]:
        """Every reason this run cannot use the vectorized core.

        The vectorized core pre-routes whole arrival segments and
        delivers completions in per-replica batches, which is exact
        only when nothing observes or perturbs the per-event
        interleaving: retries/hedging/tracing, live observers, and
        queue-aware routing all force the per-event python core.
        Plain fault schedules (``retries == 0``, no hedging/tracing)
        are eligible -- they run the segmented vectorized fault path.
        With ``epoch=True`` (``core="vector-epoch"``), queue-aware
        routing is also admitted, but fault schedules are not
        (mid-epoch kills would invalidate the queue snapshots).

        Returns the empty list when the run is eligible; otherwise
        *all* applicable reasons, so a forced ``core="vector"`` error
        (and the ``auto`` fallback log line) names everything the
        caller would have to change, not just the first obstacle.
        """
        reasons: list[str] = []
        if (
            self.retries > 0
            or self.hedge_ms is not None
            or (self.observer is not None and self.observer.trace)
        ):
            reasons.append(
                "retries, hedging, or tracing requires the per-event core"
            )
        elif self.faults is not None and epoch:
            reasons.append(
                "fault injection under epoch routing would kill queries "
                "mid-epoch; use core='auto' for the segmented fault path"
            )
        if self.observer is not None:
            reasons.append(
                "a live observer requires per-event completion hooks"
            )
        if self.carbon is not None:
            reasons.append(
                "carbon accounting records per-replica activation "
                "windows, which only the per-event core maintains"
            )
        if self.percentile_mode != "exact":
            reasons.append(
                "sketch-mode reports fold completions one event at a "
                "time; the batch core would have to materialize them"
            )
        if not epoch:
            for model, policy in self._policies.items():
                if not policy.outstanding_oblivious:
                    reasons.append(
                        f"policy {policy.name!r} (model {model!r}) is "
                        "queue-aware: it reads live outstanding counts "
                        "(core='vector-epoch' batches them statistically)"
                    )
        return reasons

    def _vector_fallback_reason(self) -> str | None:
        """All refusal reasons joined (``None`` = vector-eligible)."""
        reasons = self._vector_fallback_reasons(
            epoch=self.core == "vector-epoch"
        )
        return "; ".join(reasons) if reasons else None

    def _seal_sketches(self, horizon: float) -> None:
        """Close sketch accumulators at the measurement horizon.

        Called once when the arrival stream exhausts (the moment the
        horizon becomes known); completions draining in after it are
        filtered at append time, mirroring exact mode's
        ``finish <= horizon`` cut.  No-op in exact mode and for
        accumulators already sealed by a forced ``horizon_s``.
        """
        sketches = self._sketch_stats
        if sketches is not None:
            for acc in sketches.values():
                if type(acc) is not list:
                    acc.seal(horizon)

    # ------------------------------------------------------------------

    def run(
        self, trace, warmup_s: float = 0.0, *, horizon_s: float | None = None
    ) -> FleetResult:
        """Play a multi-model arrival source through the fleet.

        Args:
            trace: ``(model_name, query)`` pairs -- either a
                materialized list/tuple (any order; sorted here, the
                legacy shape) or a lazily-consumed arrival source: a
                :class:`~repro.traces.FleetArrivals`, a
                :class:`~repro.traces.RecordedTrace`, or any iterable
                already sorted by arrival time.  Streams are pulled one
                arrival at a time, so a multi-million-query replay
                holds O(replicas + one segment) memory instead of the
                whole trace.  The measurement horizon is the last
                arrival's timestamp in both shapes.  Stochastic fault
                schedules additionally need a draw horizon: lists use
                their last arrival, streams use the source's nominal
                ``end_s`` (synthetic processes expose it; a horizon-
                less iterator is refused) -- so a ``random:`` schedule
                draws slightly past the last arrival on the streamed
                shape.  Scripted schedules are horizon-free and
                bit-identical across both shapes.
            warmup_s: Initial window excluded from the statistics.
            horizon_s: Force the measurement horizon instead of using
                the stream's last arrival.  The sharded runner passes
                the *fleet-wide* last arrival here so every shard
                measures the identical window (qps denominators, tick
                counts, and active-time accounting all match the
                single-process run bit-for-bit).  Must be >= the
                stream's own last arrival; fault-free runs only.
        """
        if horizon_s is not None:
            if self._fault_mode:
                raise ValueError(
                    "horizon_s is only supported for fault-free runs "
                    "(the fault loops derive their own horizon)"
                )
            if horizon_s <= warmup_s:
                raise ValueError("horizon_s must exceed warmup_s")
        if self.core != "python":
            epoch = self.core == "vector-epoch"
            reasons = self._vector_fallback_reasons(epoch=epoch)
            if horizon_s is not None:
                reasons.append(
                    "a forced measurement horizon requires the "
                    "per-event core"
                )
            if not reasons:
                try:
                    from repro.sim import fast_core
                except ImportError:
                    reasons.append(
                        "numpy is unavailable (the vectorized core needs it)"
                    )
            if not reasons:
                if epoch:
                    return fast_core.run_epoch(self, trace, warmup_s)
                if self.faults is not None:
                    return fast_core.run_vectorized_faults(
                        self, trace, warmup_s
                    )
                return fast_core.run_vectorized(self, trace, warmup_s)
            reason = "; ".join(reasons)
            if self.core != "auto":
                raise ValueError(
                    f"core='{self.core}' is unavailable for this run: "
                    f"{reason}; use core='python' or core='auto'"
                )
            if not self._quiet_core_fallback:
                _LOG.info(
                    "core='auto': falling back to the python event core (%s)",
                    reason,
                )
        heap = EventHeap()
        if isinstance(trace, (list, tuple)):
            if not trace:
                raise ValueError("empty fleet trace")
            import numpy as np

            trace = list(trace)
            arr = np.asarray([q.arrival_s for _, q in trace])
            if len(arr) > 1 and bool((np.diff(arr) < 0.0).any()):
                # Stable order keeps trace position on ties, matching
                # the event counters the old all-arrivals-on-the-heap
                # scheme assigned.
                order = np.argsort(arr, kind="stable").tolist()
                trace = [trace[k] for k in order]
            # The last arrival (max, not the caller-order last element)
            # bounds stochastic fault draws, exactly as before.
            end_hint = float(arr.max())
            arrivals = iter(trace)
        else:
            # A streamed source; trust its sort order (verified as the
            # stream is consumed).  Its nominal end is needed only to
            # bound stochastic fault draws -- fetched lazily because
            # e.g. RecordedTrace.end_s costs a full file scan.
            end_hint = None
            if (
                self.faults is not None
                and getattr(self.faults, "stochastic_params", None) is not None
            ):
                end_hint = getattr(trace, "end_s", None)
            arrivals = iter(trace)
        first = next(arrivals, None)
        if first is None:
            raise ValueError("empty fleet trace")

        # Windowed completion/arrival/drop feeds for the autoscaler.
        window_lat: dict[str, list[float]] = {m: [] for m in self._routable}
        window_arrivals: dict[str, int] = {m: 0 for m in self._routable}
        window_drops: dict[str, int] = {m: 0 for m in self._routable}
        scale_events: list = []
        if self.autoscaler is not None:
            # One tick lives on the heap at a time, rescheduled as it
            # fires; seq -1 keeps the legacy tie order (a tick at
            # exactly a finish timestamp still wins, arrivals still
            # win over ticks).
            heappush(heap.items, (self.autoscaler.window_s, -1, None, 0, None))

        # Models with no replica anywhere in the fleet are added as the
        # stream names them, so they still surface as dropped/violating.
        # Sketch mode swaps the per-model sample lists for O(1)-memory
        # accumulators exposing the same ``append((finish, lat))`` the
        # loops call; the loops themselves are unchanged.
        completions: dict
        if self.percentile_mode == "sketch":
            from repro.fleet.report import LatencySketchSeries

            completions = {
                m: LatencySketchSeries(
                    sla_ms=self.sla_ms.get(m, float("inf")),
                    warmup_s=warmup_s,
                    horizon_s=horizon_s,
                )
                for m in self._routable
            }
            self._sketch_stats = completions
        else:
            self._sketch_stats = None
            completions = {m: [] for m in self._routable}
        dropped: dict[str, int] = {m: 0 for m in completions}
        scaling = self.autoscaler is not None

        # One lookup per arrival: model -> (replica list, policy).  The
        # replica lists are the exact objects the autoscaler mutates.
        streams = {
            m: (self._routable[m], self._policies[m]) for m in self._routable
        }
        events = heap.items
        dead = heap.dead
        finished: list[QueryState] = []
        # The loop allocates an event tuple per batch and never builds
        # cycles; keeping the generational GC out of it saves a few
        # percent on long replays.
        import gc

        fault_info = None
        if self.observer is not None:
            self.observer.bind(self)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._fault_mode:
                from repro.fleet.faults import run_fault_loop

                fault_info = run_fault_loop(
                    self, arrivals, first, streams, heap,
                    warmup_s, end_hint, scaling, completions, dropped,
                    window_lat, window_arrivals, window_drops, scale_events,
                )
                count = fault_info["arrivals"]
                horizon = fault_info["horizon"]
                ticks = fault_info["ticks"]
            else:
                count, horizon, ticks = self._run_loop(
                    arrivals, first, streams, events, dead, finished, heap,
                    warmup_s, scaling, completions, dropped,
                    window_lat, window_arrivals, window_drops, scale_events,
                    horizon_s,
                )
        finally:
            if gc_was_enabled:
                gc.enable()

        for server in self.servers:
            server.settle(horizon)
        self.last_event_count = count + heap.seq + ticks
        self.last_tick_count = ticks
        self.last_query_log = fault_info.pop("log") if fault_info else ()

        result = self._summarize(
            completions, dropped, warmup_s, horizon, tuple(scale_events),
            fault_info,
        )
        if self.carbon is not None:
            # Price the measured energy with the grid and execute any
            # deferrable jobs on the same timeline -- purely additive:
            # every real-time float above is already final.
            from repro.carbon.accounting import (
                attach_carbon,
                realtime_power_profile,
            )

            deferrable_report = None
            if self.deferrable:
                from repro.carbon.deferrable import run_deferrable

                deferrable_report = run_deferrable(
                    self.deferrable,
                    self.carbon,
                    policy=self.deferrable_policy,
                    horizon_s=horizon,
                    power_cap_w=self.power_cap_w,
                    realtime_profile=realtime_power_profile(self.servers),
                    deferral_horizon_s=self.deferral_horizon_s,
                )
            self.last_deferrable_report = deferrable_report
            result = attach_carbon(
                result, self.servers, self.carbon, horizon, deferrable_report
            )
        if self.observer is not None:
            self.observer.finish(horizon, warmup_s, result, self)
        return result

    def _run_loop(
        self, arrivals, first, streams, events, dead, finished, heap,
        warmup_s, scaling, completions, dropped,
        window_lat, window_arrivals, window_drops, scale_events,
        horizon_s=None,
    ) -> tuple[int, float, int]:
        """The hot event loop (split out so the GC guard stays simple).

        Arrivals are pulled lazily from the ``arrivals`` iterator (one
        pair held in hand); the measurement horizon is the last
        arrival's timestamp, discovered at stream exhaustion -- until
        then it is ``inf``, which is equivalent because any event
        popped while arrivals remain is strictly earlier than the next
        (and hence the last) arrival.  A forced ``horizon_s`` replaces
        that discovery (the sharded runner's fleet-wide horizon); it
        behaves identically because every pre-exhaustion event is
        earlier than the stream's last arrival <= ``horizon_s``, while
        autoscaler ticks keep firing up to the forced horizon exactly
        as they would in the fleet-wide run.  Returns
        ``(arrival_count, horizon, ticks_fired)``.
        """
        horizon = float("inf") if horizon_s is None else horizon_s
        count = 0
        ticks = 0
        window_s = self.autoscaler.window_s if scaling else 0.0
        # Observability hooks: one pre-bound bool guards every site, so
        # an unobserved run adds no float operations (bit-identical,
        # pinned by tests/test_perf_equivalence.py).
        probe = self.observer
        probe_on = probe is not None and probe.metrics
        nxt = first
        nxt_t = first[1][1]  # arrival_s via the namedtuple fast path
        while True:
            # -- next event: arrival stream vs heap, arrivals win ties --
            if nxt is not None:
                now = nxt_t
                if not events or now <= events[0][0]:
                    model, query = nxt
                    nxt = next(arrivals, None)
                    if nxt is None:
                        if horizon_s is None:
                            horizon = now
                        elif now > horizon_s:
                            raise ValueError(
                                f"horizon_s={horizon_s!r} precedes the "
                                f"stream's last arrival (t={now!r})"
                            )
                        self._seal_sketches(horizon)
                    else:
                        t = nxt[1][1]
                        if t < now:
                            raise ValueError(
                                "arrival stream is not sorted by time "
                                f"(t={t!r} after t={now!r})"
                            )
                        nxt_t = t
                    count += 1
                    if probe_on:
                        probe.on_arrival(model, now)
                    stream = streams.get(model)
                    if not stream or not stream[0]:
                        # Warmup drops stay out of the stats (mirroring
                        # the completion window) but feed the autoscaler.
                        if model not in completions:
                            completions[model] = []
                        if now >= warmup_s:
                            dropped[model] = dropped.get(model, 0) + 1
                        if scaling:
                            window_drops[model] = window_drops.get(model, 0) + 1
                        if probe_on:
                            probe.on_drop(model, now)
                        continue
                    candidates, policy = stream
                    server = policy.choose(candidates)
                    server.outstanding += 1
                    if scaling:
                        window_arrivals[model] += 1
                    direct = server.direct
                    if direct is not None:
                        # Inlined heap.push; the (model, query) trace
                        # pair rides along as the completion payload.
                        seq = heap.seq
                        heap.seq = seq + 1
                        heappush(
                            events,
                            (
                                direct.completion_time(
                                    now, query.size, query.pooling_scale
                                ),
                                seq,
                                server,
                                -1,
                                (model, query),
                            ),
                        )
                    else:
                        qs = QueryState(query, model)
                        qs.server = server
                        server.pipeline.enqueue(0, qs, qs.size, now, heap)
                    continue
            elif not events:
                break
            entry = heappop(events)
            if dead and entry[1] in dead:
                dead.discard(entry[1])
                continue
            now = entry[0]
            server = entry[2]
            if server is None:  # autoscaler tick
                if now >= horizon:
                    continue  # stream drained past the last arrival
                ticks += 1
                heappush(events, (now + window_s, -1, None, 0, None))
                self._apply_autoscaler_tick(
                    now, window_lat, window_arrivals, window_drops, scale_events
                )
                continue
            idx = entry[3]
            if idx < 0:  # direct-path completion event, bookkept inline
                model, query = entry[4]
                arrival = query.arrival_s
                server.completed += 1
                if arrival >= warmup_s and now <= horizon:
                    server.completed_in_window += 1
                server.items_done += query.size
                server.outstanding -= 1
                latency = now - arrival
                completions[model].append((now, latency))
                if scaling:
                    window_lat[model].append(latency * 1e3)
                if probe_on:
                    probe.on_completion(model, latency, now)
                if server.draining and server.outstanding == 0:
                    server.settle(now)
                    server.active = False
                    server.draining = False
                continue
            server.pipeline.on_finish(idx, entry[4], now, heap, finished)
            if finished:
                for qs in finished:
                    # Same bookkeeping as the direct path above.
                    server.completed += 1
                    if qs.arrival_s >= warmup_s and now <= horizon:
                        server.completed_in_window += 1
                    server.items_done += qs.size
                    server.outstanding -= 1
                    latency = now - qs.arrival_s
                    completions[qs.model].append((now, latency))
                    if scaling:
                        window_lat[qs.model].append(latency * 1e3)
                    if probe_on:
                        probe.on_completion(qs.model, latency, now)
                    if server.draining and server.outstanding == 0:
                        server.settle(now)
                        server.active = False
                        server.draining = False
                finished.clear()
        return count, horizon, ticks

    # ------------------------------------------------------------------

    def _summarize(
        self,
        completions: dict[str, list[tuple[float, float]]],
        dropped: dict[str, int],
        warmup_s: float,
        horizon: float,
        scale_events: tuple,
        fault_info: dict | None = None,
    ) -> FleetResult:
        import numpy as np

        duration = max(horizon - warmup_s, 1e-9)
        failed_by = fault_info["failed"] if fault_info else {}
        retried_by = fault_info["retried"] if fault_info else {}
        hedged_by = fault_info["hedged"] if fault_info else {}
        per_model: dict[str, ModelStats] = {}
        for model, samples in completions.items():
            # Measure the window [warmup, horizon]: arrivals before the
            # warmup cut are excluded, and so are completions draining
            # after the last arrival -- otherwise an overloaded fleet
            # would report more than its sustainable throughput.  The
            # vectorized core hands samples as a finish-sorted
            # ``(finish, latency)`` array pair instead of a tuple list;
            # the filter performs the same float comparison either way.
            sla = self.sla_ms.get(model, float("inf"))
            drops = dropped.get(model, 0)
            fails = failed_by.get(model, 0)
            lost = drops + fails
            if type(samples) is tuple:
                fin, lats = samples
                measured = lats[(fin - lats >= warmup_s) & (fin <= horizon)]
            elif type(samples) is not list:
                # Sketch accumulator: warmup/horizon filtering already
                # happened at append time; emit estimated percentiles
                # and exact counts without ever holding a sample list.
                samples.seal(horizon)
                per_model[model] = samples.to_stats(
                    model=model,
                    sla_ms=sla,
                    dropped=drops,
                    duration_s=duration,
                    failed=fails,
                    retried=retried_by.get(model, 0),
                    hedged=hedged_by.get(model, 0),
                )
                continue
            else:
                measured = [
                    lat
                    for finish, lat in samples
                    if finish - lat >= warmup_s and finish <= horizon
                ]
            if len(measured):
                arr = np.asarray(measured) * 1e3
                violations = int((arr > sla).sum()) + lost
                per_model[model] = ModelStats(
                    model=model,
                    sla_ms=sla,
                    completed=len(measured),
                    dropped=drops,
                    qps=len(measured) / duration,
                    p50_ms=float(np.percentile(arr, 50)),
                    p95_ms=float(np.percentile(arr, 95)),
                    p99_ms=float(np.percentile(arr, 99)),
                    mean_ms=float(arr.mean()),
                    violation_rate=violations / max(len(measured) + lost, 1),
                    failed=fails,
                    retried=retried_by.get(model, 0),
                    hedged=hedged_by.get(model, 0),
                )
            else:
                per_model[model] = ModelStats(
                    model=model,
                    sla_ms=sla,
                    completed=0,
                    dropped=drops,
                    qps=0.0,
                    p50_ms=float("inf"),
                    p95_ms=float("inf"),
                    p99_ms=float("inf"),
                    mean_ms=float("inf"),
                    violation_rate=1.0 if lost else 0.0,
                    failed=fails,
                    retried=retried_by.get(model, 0),
                    hedged=hedged_by.get(model, 0),
                )

        server_stats = []
        for s in self.servers:
            power = s.power_w()
            server_stats.append(
                ServerStats(
                    index=s.index,
                    server_type=s.server_type.name,
                    model=s.model_name,
                    plan=s.plan.describe(),
                    completed=s.completed,
                    qps=s.completed_in_window / duration if duration > 0 else 0.0,
                    power_w=power,
                    active_s=s.active_s,
                    ever_active=s.active_s > 0,
                    domain=s.domain,
                )
            )
        availability = 1.0
        fault_events: tuple = ()
        phases: tuple = ()
        if fault_info is not None:
            # Uptime fraction of routable serving time: time replicas
            # actually served over that plus time crashed-while-routable
            # replicas spent dead.  Robust to mid-run activations and
            # drains (both sides count the same replica-populations), and
            # in [0, 1] by construction.
            downtime = fault_info["downtime_s"]
            serving = sum(s.active_s for s in self.servers)
            if downtime > 0.0:
                availability = serving / (serving + downtime)
            fault_events = fault_info["events"]
            if fault_events and self.percentile_mode == "exact":
                # Sketch mode keeps no finish-stamped samples to bucket
                # into phases; documented as empty in that mode.
                from repro.fleet.report import phase_breakdown

                phases = phase_breakdown(
                    completions,
                    tuple(ev.time_s for ev in fault_events),
                    warmup_s,
                    horizon,
                )
        _, avg_power_w = fleet_power_summary(
            ((row.power_w, row.active_s) for row in server_stats), horizon
        )
        return FleetResult(
            policy=self.policy_name,
            duration_s=duration,
            per_model=per_model,
            servers=tuple(server_stats),
            avg_power_w=avg_power_w,
            scale_events=scale_events,
            events=self.last_event_count,
            availability=availability,
            fault_events=fault_events,
            phases=phases,
        )
