"""Arrival-process subsystem: traffic as a first-class object.

``repro.traces`` owns *how queries arrive*: synthetic processes
(piecewise Poisson, MMPP bursts, diurnal ramps with noise,
superpositions), recorded-trace replay from CSV/JSONL files, and the
``--arrivals`` CLI grammar.  Consumers -- the single-node DES, the
fleet engine, the fault-aware provisioner -- accept the streams these
processes produce instead of pre-materialized query lists, so replays
run in O(segment) memory and the legacy piecewise-Poisson path stays
bit-identical (``repro.sim.loadgen`` is now a thin adapter over this
package).

:class:`~repro.carbon.CarbonTrace` -- the grid carbon-intensity series
that prices the fleet's energy (see :mod:`repro.carbon`) -- is
re-exported here as the recorded-trace sibling of
:class:`RecordedTrace`; it follows the same file conventions
(CSV/JSONL, repr-exact round trips, ``path:line:`` parse errors).
"""

from repro.traces.arrivals import (
    MODEL_SEED_STRIDE,
    ArrivalProcess,
    DiurnalProcess,
    FleetArrivals,
    MMPPProcess,
    PiecewisePoissonProcess,
    PoissonProcess,
    SuperposedProcess,
    poisson_segment,
)
from repro.carbon.trace import CarbonTrace, read_carbon_trace, save_carbon_trace
from repro.traces.recorded import RecordedTrace, read_trace, save_trace
from repro.traces.spec import ArrivalSpec, parse_arrivals

__all__ = [
    "MODEL_SEED_STRIDE",
    "ArrivalProcess",
    "DiurnalProcess",
    "FleetArrivals",
    "MMPPProcess",
    "PiecewisePoissonProcess",
    "PoissonProcess",
    "SuperposedProcess",
    "poisson_segment",
    "RecordedTrace",
    "read_trace",
    "save_trace",
    "CarbonTrace",
    "read_carbon_trace",
    "save_carbon_trace",
    "ArrivalSpec",
    "parse_arrivals",
]
