"""The ``--arrivals`` CLI mini-language.

A spec describes one model's arrival-process *shape*; the CLI applies
it to every model stream, scaled to that model's peak rate.  Grammar
(full reference in ``docs/cli.md``):

The spec is a list of sections separated by ``+``; each section is
``shape:key=value,...`` and the sections are superposed (their streams
merge).  Rates are *relative*: ``level`` keys are fractions of the
model's peak QPS, so one spec reuses across models of very different
traffic volumes.  Absolute rates are available via ``qps=``.

Shapes:

- ``poisson:level=0.6`` -- constant-rate Poisson at 60% of peak
  (``level`` defaults to 1.0; ``qps=`` overrides absolutely).
- ``mmpp:levels=0.2/1.5,dwell=2.0/0.3`` -- Markov-modulated burst
  process cycling through the listed state levels with the listed
  exponential mean dwells (one shared dwell is allowed:
  ``dwell=0.5``).
- ``diurnal:steps=24,trough=0.4,sharpness=2,noise=0.1,days=1,level=1``
  -- compressed diurnal ramp; ``noise`` adds multiplicative
  per-segment rate noise, ``peak_at`` moves the peak (fraction of the
  day, default ``0.8333`` ≈ hour 20).

Examples: ``poisson:level=0.75``, ``mmpp:levels=0.3/2.0,dwell=1.5/0.2``,
``diurnal:noise=0.15+mmpp:levels=0/1.2,dwell=3/0.25`` (a noisy diurnal
ramp carrying burst storms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.queries import QueryWorkload
from repro.traces.arrivals import (
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    SuperposedProcess,
)

__all__ = ["ArrivalSpec", "parse_arrivals"]

_SHAPES = ("poisson", "mmpp", "diurnal")

#: Allowed keys per shape (value parser, default).
_POISSON_KEYS = {"level", "qps"}
_MMPP_KEYS = {"levels", "qps", "dwell"}
_DIURNAL_KEYS = {
    "steps",
    "trough",
    "sharpness",
    "noise",
    "days",
    "level",
    "peak_at",
}


def _parse_kv(section: str, body: str, allowed: set[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    if not body:
        return out
    for pair in body.split(","):
        key, sep, value = pair.strip().partition("=")
        if not sep or key not in allowed:
            raise ValueError(
                f"bad arrivals parameter {pair!r} in section {section!r}; "
                f"known keys: {', '.join(sorted(allowed))}"
            )
        if key in out:
            raise ValueError(
                f"duplicate arrivals parameter {key!r} in section "
                f"{section!r}; each key may appear once"
            )
        out[key] = value
    return out


def _floats(text: str, what: str) -> tuple[float, ...]:
    try:
        return tuple(float(v) for v in text.split("/"))
    except ValueError:
        raise ValueError(f"bad {what} list {text!r}; use slash-separated numbers")


@dataclass(frozen=True)
class _Section:
    shape: str
    params: dict

    def build(
        self, workload: QueryWorkload, peak_qps: float, duration_s: float
    ) -> ArrivalProcess:
        p = self.params
        if self.shape == "poisson":
            qps = float(p["qps"]) if "qps" in p else peak_qps * float(
                p.get("level", 1.0)
            )
            return PoissonProcess(workload, qps, duration_s)
        if self.shape == "mmpp":
            if "qps" in p:
                rates = _floats(p["qps"], "qps")
            elif "levels" in p:
                rates = tuple(
                    peak_qps * lv for lv in _floats(p["levels"], "levels")
                )
            else:
                raise ValueError("mmpp needs levels= (or qps=)")
            if "dwell" not in p:
                raise ValueError("mmpp needs dwell=")
            dwell = _floats(p["dwell"], "dwell")
            return MMPPProcess(
                workload,
                rates,
                dwell if len(dwell) > 1 else dwell[0],
                duration_s,
            )
        # diurnal
        days = int(p.get("days", 1))
        if days < 1:
            raise ValueError(f"diurnal days= must be >= 1, got {days}")
        return DiurnalProcess(
            workload,
            peak_qps * float(p.get("level", 1.0)),
            duration_s / days,
            steps=int(p.get("steps", 24)),
            trough_ratio=float(p.get("trough", 0.4)),
            peak_position=float(p.get("peak_at", 20.0 / 24.0)),
            sharpness=float(p.get("sharpness", 2.0)),
            noise=float(p.get("noise", 0.0)),
            days=days,
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """A parsed ``--arrivals`` spec: one or more superposed shapes.

    ``build`` instantiates the concrete process for one model given its
    workload, peak rate, and the replay duration (the whole spec spans
    ``duration_s`` seconds).
    """

    sections: tuple[_Section, ...]

    def build(
        self, workload: QueryWorkload, peak_qps: float, duration_s: float
    ) -> ArrivalProcess:
        if peak_qps <= 0:
            raise ValueError("peak_qps must be positive")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        built = [
            s.build(workload, peak_qps, duration_s) for s in self.sections
        ]
        return built[0] if len(built) == 1 else SuperposedProcess(built)

    def describe(self) -> str:
        return "+".join(s.shape for s in self.sections)


def parse_arrivals(spec: str) -> ArrivalSpec:
    """Parse the ``--arrivals`` mini-language into an :class:`ArrivalSpec`.

    Raises :class:`ValueError` naming the offending section or key on
    any syntax error; numeric validation (positive rates, dwell > 0)
    happens at :meth:`ArrivalSpec.build` time through the process
    constructors.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty --arrivals spec")
    sections: list[_Section] = []
    for raw in spec.split("+"):
        raw = raw.strip()
        if not raw:
            raise ValueError(f"empty section in --arrivals spec {spec!r}")
        shape, _, body = raw.partition(":")
        shape = shape.strip()
        if shape == "poisson":
            params = _parse_kv(raw, body, _POISSON_KEYS)
        elif shape == "mmpp":
            params = _parse_kv(raw, body, _MMPP_KEYS)
            if "levels" not in params and "qps" not in params:
                raise ValueError(f"{raw!r}: mmpp needs levels= (or qps=)")
            if "dwell" not in params:
                raise ValueError(f"{raw!r}: mmpp needs dwell=")
        elif shape == "diurnal":
            params = _parse_kv(raw, body, _DIURNAL_KEYS)
        else:
            raise ValueError(
                f"unknown arrival shape {shape!r} in {raw!r}; one of "
                f"{', '.join(_SHAPES)}"
            )
        sections.append(_Section(shape, params))
    return ArrivalSpec(tuple(sections))
