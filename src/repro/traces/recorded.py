"""Recorded-trace replay: save and stream measured arrival traces.

Synthetic processes are controllable; measured traces are honest.  This
module gives the repo a round-trippable on-disk trace format so a
production capture (or a synthesized trace worth keeping) can be
replayed through every consumer:

- **CSV**: header ``model,arrival_s,size,pooling_scale`` (the ``model``
  column may be omitted for single-model traces), one row per query.
- **JSONL**: one object per line with keys ``model``, ``t``, ``size``,
  ``pooling`` (``model`` optional, ``pooling`` defaults to 1.0).

Floats are written with ``repr`` so a write/read round trip is exact
(bit-identical arrival times and pooling scales -- pinned by the
hypothesis lane in ``tests/test_traces.py``).  Readers stream the file
line by line: replaying a multi-gigabyte capture holds one query in
memory at a time.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator

from repro.sim.queries import Query

__all__ = ["RecordedTrace", "save_trace", "read_trace"]

_CSV_FIELDS = ("model", "arrival_s", "size", "pooling_scale")


def _format_for(path: str, fmt: str | None) -> str:
    if fmt is not None:
        if fmt not in ("csv", "jsonl"):
            raise ValueError(f"unknown trace format {fmt!r}; use 'csv' or 'jsonl'")
        return fmt
    ext = os.path.splitext(path)[1].lower()
    if ext == ".csv":
        return "csv"
    if ext in (".jsonl", ".ndjson"):
        return "jsonl"
    raise ValueError(
        f"cannot infer trace format from {path!r}; use a .csv or .jsonl "
        "extension or pass fmt="
    )


def _as_pairs(trace: Iterable) -> Iterator[tuple[str | None, Query]]:
    for item in trace:
        if isinstance(item, Query):
            yield None, item
        else:
            model, query = item
            yield model, query


def save_trace(path: str, trace: Iterable, fmt: str | None = None) -> int:
    """Write a trace file; returns the number of queries written.

    ``trace`` may yield bare :class:`Query` records (single-model) or
    ``(model_name, Query)`` pairs (fleet shape).  Format comes from the
    extension (``.csv`` / ``.jsonl``) unless ``fmt`` forces it.
    """
    fmt = _format_for(path, fmt)
    count = 0
    with open(path, "w") as fh:
        if fmt == "csv":
            fh.write(",".join(_CSV_FIELDS) + "\n")
            for model, q in _as_pairs(trace):
                if model and any(c in model for c in ",\n\r"):
                    raise ValueError(
                        f"model name {model!r} contains a comma or newline, "
                        "which would corrupt the CSV trace; rename the model "
                        "or save as .jsonl"
                    )
                fh.write(
                    f"{model or ''},{q.arrival_s!r},{q.size},{q.pooling_scale!r}\n"
                )
                count += 1
        else:
            for model, q in _as_pairs(trace):
                rec = {"t": q.arrival_s, "size": q.size, "pooling": q.pooling_scale}
                if model is not None:
                    rec["model"] = model
                fh.write(json.dumps(rec) + "\n")
                count += 1
    return count


def read_trace(
    path: str, default_model: str | None = None, fmt: str | None = None
) -> Iterator[tuple[str, Query]]:
    """Stream ``(model, Query)`` pairs from a trace file.

    Query ids are assigned per model in file order (0, 1, ...), the
    same convention the synthetic processes use.  Rows without a model
    take ``default_model``; a file with neither raises.
    """
    fmt = _format_for(path, fmt)
    next_id: dict[str, int] = {}
    with open(path) as fh:
        if fmt == "csv":
            header = fh.readline().strip()
            fields = [f.strip() for f in header.split(",")]
            if "arrival_s" not in fields:
                raise ValueError(
                    f"{path}: CSV trace needs an arrival_s column "
                    f"(header was {header!r})"
                )
            idx = {name: fields.index(name) for name in fields}
            for line_no, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) < len(fields):
                    raise ValueError(
                        f"{path}:{line_no}: row has {len(parts)} columns but "
                        f"the header names {len(fields)} ({line!r})"
                    )
                model = (
                    parts[idx["model"]].strip() if "model" in idx else ""
                ) or default_model
                if not model:
                    raise ValueError(
                        f"{path}:{line_no}: row names no model and no "
                        "default_model was given"
                    )
                t = float(parts[idx["arrival_s"]])
                size = int(parts[idx["size"]]) if "size" in idx else 1
                pooling = (
                    float(parts[idx["pooling_scale"]])
                    if "pooling_scale" in idx
                    else 1.0
                )
                qid = next_id.get(model, 0)
                next_id[model] = qid + 1
                yield model, Query(qid, t, size, pooling)
        else:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                model = rec.get("model") or default_model
                if not model:
                    raise ValueError(
                        f"{path}:{line_no}: record names no model and no "
                        "default_model was given"
                    )
                qid = next_id.get(model, 0)
                next_id[model] = qid + 1
                yield model, Query(
                    qid,
                    float(rec["t"]),
                    int(rec.get("size", 1)),
                    float(rec.get("pooling", 1.0)),
                )


class RecordedTrace:
    """A re-iterable fleet arrival source backed by a trace file.

    Iterating yields time-sorted ``(model, Query)`` pairs streamed from
    disk; each ``iter()`` re-opens the file, so repeat-replay consumers
    (the provisioner, A/B comparisons) work unchanged.  ``end_s`` and
    ``mean_qps`` scan the file once on first use and are cached.

    The reader validates monotone timestamps lazily (the fleet engine
    does too); ``validate()`` forces a full scan up front.
    """

    def __init__(
        self, path: str, default_model: str | None = None, fmt: str | None = None
    ) -> None:
        self.path = path
        self.default_model = default_model
        self.fmt = _format_for(path, fmt)
        self._stats: tuple[float, float, dict[str, int]] | None = None

    def __iter__(self) -> Iterator[tuple[str, Query]]:
        return read_trace(self.path, default_model=self.default_model, fmt=self.fmt)

    def _scan(self) -> tuple[float, float, dict[str, int]]:
        if self._stats is None:
            first = last = None
            counts: dict[str, int] = {}
            for model, q in self:
                t = q.arrival_s
                if first is None:
                    first = t
                last = t
                counts[model] = counts.get(model, 0) + 1
            if first is None:
                raise ValueError(f"{self.path}: empty trace file")
            self._stats = (first, last, counts)
        return self._stats

    def validate(self) -> int:
        """Full scan: monotone timestamps, parseable rows; returns count."""
        prev = -float("inf")
        count = 0
        for _model, q in self:
            if q.arrival_s < prev:
                raise ValueError(
                    f"{self.path}: arrival times regress at t={q.arrival_s!r}"
                )
            prev = q.arrival_s
            count += 1
        if count == 0:
            raise ValueError(f"{self.path}: empty trace file")
        return count

    @property
    def end_s(self) -> float:
        return self._scan()[1]

    @property
    def mean_qps(self) -> dict[str, float]:
        """Per-model mean rate over the trace span.

        A trace whose queries share a single timestamp has no measurable
        span; it is treated as one second of traffic (rate = count/1s)
        rather than dividing by an epsilon and reporting ~1e9 qps.
        """
        first, last, counts = self._scan()
        span = last - first
        if span <= 0.0:
            span = 1.0
        return {m: c / span for m, c in sorted(counts.items())}

    def models(self) -> tuple[str, ...]:
        return tuple(sorted(self._scan()[2]))
