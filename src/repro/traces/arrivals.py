"""Arrival processes: first-class workload-traffic models.

Every consumer in the repo used to hard-code piecewise-Poisson arrivals
materialized into one sorted query list.  This module makes the arrival
process itself a pluggable object: a :class:`ArrivalProcess` describes
*how* traffic arrives (steady Poisson, Markov-modulated bursts, diurnal
ramps, superpositions), and ``stream()`` lazily yields the concrete
time-sorted :class:`~repro.sim.queries.Query` records -- one segment at
a time, so a multi-million-query replay never holds the whole trace in
memory.

Two shapes flow through the repo:

- single-model streams (``Iterator[Query]``) feed the single-node DES;
- multi-model streams (``Iterator[(model_name, Query)]``) feed the
  fleet engine.  :class:`FleetArrivals` merges per-model processes into
  one lazily-sorted pair stream and is *re-iterable*: each ``iter()``
  restarts the replay, which is what lets the fault-aware provisioner
  replay the same traffic at every candidate ``R``.

Bit-compatibility: :class:`PiecewisePoissonProcess` reproduces the
legacy ``repro.sim.loadgen`` draw sequence exactly (same per-segment
seeds, same vectorized numpy draws), and :class:`FleetArrivals` over
such processes reproduces the legacy ``build_fleet_trace`` merge order
element-for-element -- ``tests/test_perf_equivalence.py`` pins both
with ``==`` on floats.

HPC benchmarking practice (RZBENCH; the Broadwell/Cascade Lake
characterizations) warns that synthetic-only inputs flatter
steady-state designs; :mod:`repro.traces.recorded` adds measured-trace
replay on the same protocol.
"""

from __future__ import annotations

import math
from heapq import merge as _heapq_merge
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.sim.queries import Query, QueryWorkload

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "PiecewisePoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "SuperposedProcess",
    "FleetArrivals",
    "poisson_segment",
    "MODEL_SEED_STRIDE",
]

#: Per-model seed offset stride the fleet trace builder has always used
#: (models in sorted-name order draw from disjoint seed lanes).
MODEL_SEED_STRIDE = 7919


def poisson_segment(
    workload: QueryWorkload,
    arrival_rate_qps: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
    first_id: int = 0,
) -> list[Query]:
    """One fully-drawn Poisson segment (the legacy loadgen core).

    Draw the arrival count then sort uniforms: equivalent to a Poisson
    process without growing a list of exponential gaps.  All sampling
    and clamping is vectorized; ``tolist`` converts to Python scalars
    in one C pass.  ``repro.sim.loadgen.generate_trace`` is a thin
    wrapper around this function, so the draw sequence here is the
    historically pinned one -- change it and the float-equivalence
    suite fails.
    """
    if arrival_rate_qps <= 0:
        raise ValueError("arrival rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    count = rng.poisson(arrival_rate_qps * duration_s)
    times = (np.sort(rng.uniform(0.0, duration_s, size=count)) + start_s).tolist()
    sizes = workload.size_dist.sample(rng, count).tolist()
    if workload.pooling_cv > 0:
        shape = 1.0 / workload.pooling_cv**2
        pooling = rng.gamma(shape, 1.0 / shape, size=count)
    else:
        pooling = np.ones(count)
    pooling = np.maximum(pooling, 1e-3).tolist()
    # Query._make skips per-field validation -- every field above is
    # already validated in bulk (sizes clipped >= min_size >= 1, times
    # shifted by a non-negative start, pooling clamped positive).
    return list(
        map(
            Query._make,
            zip(range(first_id, first_id + count), times, sizes, pooling),
        )
    )


def _segment_with_rng(
    workload: QueryWorkload,
    rng: np.random.Generator,
    arrival_rate_qps: float,
    start_s: float,
    duration_s: float,
    first_id: int,
) -> list[Query]:
    """A Poisson segment drawn from a *running* generator.

    Used by processes whose rate trajectory itself consumes randomness
    (MMPP dwell times, diurnal noise): one sequentially-consumed RNG
    keeps the whole trajectory deterministic per seed without a seed
    schedule per segment.
    """
    count = int(rng.poisson(arrival_rate_qps * duration_s)) if arrival_rate_qps > 0 else 0
    if count == 0:
        return []
    times = (np.sort(rng.uniform(0.0, duration_s, size=count)) + start_s).tolist()
    sizes = workload.size_dist.sample(rng, count).tolist()
    if workload.pooling_cv > 0:
        shape = 1.0 / workload.pooling_cv**2
        pooling = np.maximum(rng.gamma(shape, 1.0 / shape, size=count), 1e-3).tolist()
    else:
        pooling = [1.0] * count
    return list(
        map(
            Query._make,
            zip(range(first_id, first_id + count), times, sizes, pooling),
        )
    )


class ArrivalProcess:
    """One model's arrival traffic, described as a process.

    Subclasses implement :meth:`stream`, lazily yielding
    :class:`Query` records with non-decreasing ``arrival_s`` and
    consecutive ids from ``first_id``.  The three derived quantities
    every consumer needs are part of the protocol:

    - ``end_s`` -- the nominal end of the process (the replay horizon
      hint used to bound stochastic fault draws and autoscaler
      windows); ``None`` when unknown without a scan.
    - ``mean_qps`` -- the time-averaged offered rate (used to size
      fleets and SLAs against capacity).
    - ``peak_qps`` -- the highest instantaneous segment rate (what a
      provisioner must cover).
    """

    workload: QueryWorkload

    @property
    def end_s(self) -> float | None:
        raise NotImplementedError

    @property
    def mean_qps(self) -> float:
        raise NotImplementedError

    @property
    def peak_qps(self) -> float:
        return self.mean_qps

    def stream(self, seed: int = 0, first_id: int = 0) -> Iterator[Query]:
        raise NotImplementedError

    def materialize(self, seed: int = 0, first_id: int = 0) -> list[Query]:
        """The fully-drawn trace (legacy list shape)."""
        return list(self.stream(seed=seed, first_id=first_id))


class PiecewisePoissonProcess(ArrivalProcess):
    """Chained constant-rate Poisson segments (the legacy workload).

    Args:
        workload: Size/pooling distributions to sample.
        segments: ``(qps, duration_s)`` chain laid back to back from
            t=0.  Segments with non-positive rate or duration are
            skipped (a positive duration still advances the clock),
            exactly as the legacy fleet trace builder did.
        seed_offset / seed_stride: Segment ``s`` draws with seed
            ``seed + seed_offset + seed_stride * s`` -- the historical
            schedule (offset 0, stride 1) by default.
    """

    def __init__(
        self,
        workload: QueryWorkload,
        segments: Sequence[tuple[float, float]],
        seed_offset: int = 0,
        seed_stride: int = 1,
    ) -> None:
        self.workload = workload
        self.segments = tuple((float(q), float(d)) for q, d in segments)
        if not self.segments:
            raise ValueError("need at least one segment")
        if sum(max(d, 0.0) for _, d in self.segments) <= 0:
            raise ValueError("need positive total duration")
        self.seed_offset = seed_offset
        self.seed_stride = seed_stride

    @property
    def end_s(self) -> float:
        return sum(max(d, 0.0) for _, d in self.segments)

    @property
    def mean_qps(self) -> float:
        total = self.end_s
        return (
            sum(max(q, 0.0) * d for q, d in self.segments if d > 0) / total
        )

    @property
    def peak_qps(self) -> float:
        return max(q for q, _ in self.segments)

    def stream(self, seed: int = 0, first_id: int = 0) -> Iterator[Query]:
        clock = 0.0
        next_id = first_id
        for s_idx, (qps, dur) in enumerate(self.segments):
            if qps > 0 and dur > 0:
                queries = poisson_segment(
                    self.workload,
                    qps,
                    dur,
                    seed=seed + self.seed_offset + self.seed_stride * s_idx,
                    start_s=clock,
                    first_id=next_id,
                )
                next_id += len(queries)
                yield from queries
            clock += dur


class PoissonProcess(PiecewisePoissonProcess):
    """A single constant-rate Poisson segment."""

    def __init__(
        self, workload: QueryWorkload, qps: float, duration_s: float
    ) -> None:
        if qps <= 0:
            raise ValueError("arrival rate must be positive")
        super().__init__(workload, [(qps, duration_s)])


class MMPPProcess(ArrivalProcess):
    """Markov-modulated Poisson process: bursty, correlated arrivals.

    The process cycles through ``rates`` states; state ``k`` lasts an
    exponential dwell with mean ``dwell_s[k]`` and emits Poisson
    arrivals at ``rates[k]``.  A two-state (low/high) configuration is
    the classic burst model: long quiet stretches punctured by short
    storms whose *within-storm* rate far exceeds the mean -- the
    traffic shape that makes steady-state tail numbers lie.

    Memory: one dwell's arrivals at a time.
    """

    def __init__(
        self,
        workload: QueryWorkload,
        rates: Sequence[float],
        dwell_s: Sequence[float] | float,
        duration_s: float,
    ) -> None:
        self.workload = workload
        self.rates = tuple(float(r) for r in rates)
        if len(self.rates) < 2:
            raise ValueError("MMPP needs at least two states")
        if any(r < 0 for r in self.rates):
            raise ValueError("state rates must be >= 0")
        if max(self.rates) <= 0:
            raise ValueError("at least one state rate must be positive")
        if isinstance(dwell_s, (int, float)):
            dwell_s = [float(dwell_s)] * len(self.rates)
        self.dwell_s = tuple(float(d) for d in dwell_s)
        if len(self.dwell_s) != len(self.rates):
            raise ValueError("need one dwell time per state")
        if any(d <= 0 for d in self.dwell_s):
            raise ValueError("dwell times must be > 0")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.duration_s = float(duration_s)

    @property
    def end_s(self) -> float:
        return self.duration_s

    @property
    def mean_qps(self) -> float:
        # Stationary occupancy of a cyclic chain is dwell-proportional.
        total = sum(self.dwell_s)
        return sum(r * d for r, d in zip(self.rates, self.dwell_s)) / total

    @property
    def peak_qps(self) -> float:
        return max(self.rates)

    def stream(self, seed: int = 0, first_id: int = 0) -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        clock = 0.0
        state = 0
        next_id = first_id
        n_states = len(self.rates)
        while clock < self.duration_s:
            dwell = float(rng.exponential(self.dwell_s[state]))
            dwell = min(dwell, self.duration_s - clock)
            if dwell > 0.0:
                queries = _segment_with_rng(
                    self.workload, rng, self.rates[state], clock, dwell, next_id
                )
                next_id += len(queries)
                yield from queries
            clock += dwell
            state = (state + 1) % n_states


class DiurnalProcess(ArrivalProcess):
    """A compressed diurnal day with optional per-segment noise.

    The day-periodic shape matches the cluster layer's
    ``DiurnalTrace`` (sharpened cosine between ``trough_ratio`` and 1):
    ``steps`` piecewise-constant segments span ``duration_s`` seconds
    per day for ``days`` days.  ``noise`` multiplies each segment's
    rate by ``1 + noise * N(0, 1)`` (clamped positive), drawn from the
    stream seed -- ramp realism without hand-written segment tables.
    """

    def __init__(
        self,
        workload: QueryWorkload,
        peak_qps: float,
        duration_s: float,
        steps: int = 24,
        trough_ratio: float = 0.4,
        peak_position: float = 20.0 / 24.0,
        sharpness: float = 2.0,
        noise: float = 0.0,
        days: int = 1,
    ) -> None:
        if peak_qps <= 0:
            raise ValueError("peak_qps must be positive")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if steps < 1 or days < 1:
            raise ValueError("need steps >= 1 and days >= 1")
        if not 0.0 < trough_ratio <= 1.0:
            raise ValueError("trough_ratio must be in (0, 1]")
        if not 0.0 <= peak_position < 1.0:
            raise ValueError("peak_position must be in [0, 1)")
        if sharpness < 1.0:
            raise ValueError("sharpness must be >= 1")
        if noise < 0.0:
            raise ValueError("noise must be >= 0")
        self.workload = workload
        self._peak_qps = float(peak_qps)
        self.duration_s = float(duration_s)
        self.steps = int(steps)
        self.trough_ratio = float(trough_ratio)
        self.peak_position = float(peak_position)
        self.sharpness = float(sharpness)
        self.noise = float(noise)
        self.days = int(days)

    @property
    def end_s(self) -> float:
        return self.duration_s * self.days

    def level_at(self, fraction_of_day: float) -> float:
        """Noise-free load level in [trough_ratio, 1] at a day fraction."""
        phase = (fraction_of_day - self.peak_position) * 2.0 * math.pi
        base = (1.0 + math.cos(phase)) / 2.0  # 1 at peak, 0 at trough
        return self.trough_ratio + (1.0 - self.trough_ratio) * base**self.sharpness

    @property
    def mean_qps(self) -> float:
        return self.peak_qps * (
            sum(self.level_at(i / self.steps) for i in range(self.steps)) / self.steps
        )

    @property
    def peak_qps(self) -> float:
        return self._peak_qps

    def stream(self, seed: int = 0, first_id: int = 0) -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        seg = self.duration_s / self.steps
        clock = 0.0
        next_id = first_id
        for _day in range(self.days):
            for i in range(self.steps):
                rate = self.peak_qps * self.level_at(i / self.steps)
                if self.noise > 0.0:
                    rate *= max(0.0, 1.0 + self.noise * float(rng.standard_normal()))
                queries = _segment_with_rng(
                    self.workload, rng, rate, clock, seg, next_id
                )
                next_id += len(queries)
                yield from queries
                clock += seg


class SuperposedProcess(ArrivalProcess):
    """Superposition of independent arrival processes for one model.

    Streams are merged by arrival time and re-numbered so ids stay
    consecutive -- e.g. a diurnal ramp carrying an MMPP burst overlay.
    Component ``k`` draws from ``seed + k`` so the parts stay
    independent under one stream seed.
    """

    def __init__(self, parts: Sequence[ArrivalProcess]) -> None:
        if not parts:
            raise ValueError("need at least one component process")
        self.parts = tuple(parts)
        self.workload = self.parts[0].workload

    @property
    def end_s(self) -> float | None:
        ends = [p.end_s for p in self.parts]
        return None if any(e is None for e in ends) else max(ends)

    @property
    def mean_qps(self) -> float:
        return sum(p.mean_qps for p in self.parts)

    @property
    def peak_qps(self) -> float:
        # Conservative: components may peak at different times, so the
        # sum bounds the true instantaneous peak.
        return sum(p.peak_qps for p in self.parts)

    def stream(self, seed: int = 0, first_id: int = 0) -> Iterator[Query]:
        streams = [
            part.stream(seed=seed + k) for k, part in enumerate(self.parts)
        ]
        for qid, q in enumerate(
            _heapq_merge(*streams, key=_arrival_key), start=first_id
        ):
            yield Query._make((qid, q[1], q[2], q[3]))


def _arrival_key(query: Query) -> float:
    return query[1]  # arrival_s, via the namedtuple fast path


def _pair_key(pair: tuple[str, Query]) -> float:
    return pair[1][1]


class FleetArrivals:
    """Re-iterable multi-model arrival source for the fleet engine.

    Merges per-model :class:`ArrivalProcess` streams into one
    time-sorted ``(model_name, Query)`` stream.  Models are taken in
    sorted-name order and model ``m`` streams with seed
    ``seed + MODEL_SEED_STRIDE * m`` -- the exact seed schedule and
    (stable) tie order of the legacy ``build_fleet_trace``, so a fleet
    of :class:`PiecewisePoissonProcess` inputs replays the historical
    trace element-for-element.

    Each ``iter()`` call restarts the replay from scratch: the fleet
    engine consumes it lazily, and repeat-replay consumers (the
    fault-aware provisioner, A/B benchmarks) simply iterate again.

    ``seeds`` pins each model's stream seed explicitly instead of the
    positional ``seed + stride * m_idx`` schedule.  The sharded runner
    uses this to hand a *subset* of models to a worker while keeping
    every stream's lane exactly where the full fleet would put it
    (``seed + stride * global_sorted_index``), so a sub-fleet draws
    bit-identical arrivals.
    """

    def __init__(
        self,
        processes: dict[str, ArrivalProcess],
        seed: int = 0,
        seeds: dict[str, int] | None = None,
    ) -> None:
        if not processes:
            raise ValueError("need at least one model process")
        self.processes = dict(sorted(processes.items()))
        self.seed = seed
        if seeds is not None:
            missing = sorted(set(self.processes) - set(seeds))
            if missing:
                raise ValueError(
                    f"seeds= must cover every model; missing {missing}"
                )
        self.seeds = dict(seeds) if seeds is not None else None

    @property
    def end_s(self) -> float | None:
        ends = [p.end_s for p in self.processes.values()]
        return None if any(e is None for e in ends) else max(ends)

    @property
    def mean_qps(self) -> dict[str, float]:
        return {m: p.mean_qps for m, p in self.processes.items()}

    def __iter__(self) -> Iterator[tuple[str, Query]]:
        tagged: list[Iterable[tuple[str, Query]]] = []
        for m_idx, (model, process) in enumerate(self.processes.items()):
            if self.seeds is not None:
                lane = self.seeds[model]
            else:
                lane = self.seed + MODEL_SEED_STRIDE * m_idx
            stream = process.stream(seed=lane)
            tagged.append(_tag_stream(model, stream))
        if len(tagged) == 1:
            return iter(tagged[0])
        return _heapq_merge(*tagged, key=_pair_key)

    def materialize(self) -> list[tuple[str, Query]]:
        """The fully-drawn legacy list shape."""
        return list(self)


def _tag_stream(model: str, stream: Iterator[Query]):
    for query in stream:
        yield (model, query)
