"""The task-scheduling parallelism space (paper Sections II-B, IV-B).

An :class:`ExecutionPlan` fixes one point in the scheduling space:

- *Placement* -- which model-partition mapping of Fig. 10 is used.
- *Model-parallelism* ``m`` -- co-located inference threads (CPU) or
  co-located models (accelerator).
- *Op-parallelism* ``o`` -- operator workers (= physical cores) per
  CPU inference thread.
- *Data-parallelism* ``d`` -- the CPU batch size used when splitting
  queries into sub-queries, or the accelerator query-fusion limit.

The baselines are restrictions of this space: DeepRecSys fixes
``m = cores, o = 1`` and sweeps ``d`` (CPU) with per-query batches on
the GPU; Baymax adds GPU co-location but no fusion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.hardware.server import ServerType

__all__ = ["Placement", "ExecutionPlan"]


class Placement(enum.Enum):
    """Model-partition mapping strategies (Fig. 10b-d)."""

    CPU_MODEL_BASED = "cpu_model_based"
    """The whole graph ``Gm`` on host inference threads."""

    CPU_SD_PIPELINE = "cpu_sd_pipeline"
    """SparseNet threads and DenseNet threads pipelined on the host."""

    GPU_SD = "gpu_sd"
    """SparseNet on the host, DenseNet on the accelerator (Fig. 10c)."""

    GPU_MODEL_BASED = "gpu_model_based"
    """Hot-SparseNet + DenseNet on the accelerator; the host serves
    cold lookups and forwards partial sums (Fig. 10d)."""

    @property
    def uses_gpu(self) -> bool:
        return self in (Placement.GPU_SD, Placement.GPU_MODEL_BASED)


@dataclass(frozen=True)
class ExecutionPlan:
    """One point in the task-scheduling space.

    Attributes:
        placement: Partition mapping strategy.
        threads: Inference threads on the primary device -- CPU model
            threads for CPU placements, co-located model threads for
            GPU placements.
        cores_per_thread: Operator workers per CPU model thread
            (CPU_MODEL_BASED only).
        batch_size: Sub-query batch size ``d`` for host-side execution.
        fusion_limit: Query-fusion limit in items on the accelerator;
            0 means no fusion (each query is its own batch).
        sparse_threads: Host SparseNet threads (pipeline placements).
        sparse_cores: Operator workers per sparse thread.
        dense_threads: Host DenseNet threads (CPU_SD_PIPELINE; one
            operator worker each, per Fig. 10b).
    """

    placement: Placement
    threads: int = 1
    cores_per_thread: int = 1
    batch_size: int = 64
    fusion_limit: int = 0
    sparse_threads: int = 0
    sparse_cores: int = 1
    dense_threads: int = 0

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise ValueError("threads must be >= 0")
        if self.cores_per_thread < 1 or self.sparse_cores < 1:
            raise ValueError("cores per thread must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.fusion_limit < 0:
            raise ValueError("fusion_limit must be >= 0 (0 = no fusion)")
        if self.sparse_threads < 0 or self.dense_threads < 0:
            raise ValueError("thread counts must be >= 0")
        if self.placement is Placement.CPU_MODEL_BASED and self.threads < 1:
            raise ValueError("CPU model-based needs >= 1 thread")
        if self.placement is Placement.CPU_SD_PIPELINE:
            if self.sparse_threads < 1 or self.dense_threads < 1:
                raise ValueError("S-D pipeline needs sparse and dense threads")
        if self.placement.uses_gpu and self.threads < 1:
            raise ValueError("GPU placements need >= 1 co-located thread")
        if self.placement is Placement.GPU_SD and self.sparse_threads < 1:
            raise ValueError("GPU_SD needs host sparse threads")

    @property
    def cpu_cores_used(self) -> int:
        """Physical cores the plan pins (threads x op workers)."""
        if self.placement is Placement.CPU_MODEL_BASED:
            return self.threads * self.cores_per_thread
        if self.placement is Placement.CPU_SD_PIPELINE:
            return self.sparse_threads * self.sparse_cores + self.dense_threads
        if self.placement is Placement.GPU_SD:
            return self.sparse_threads * self.sparse_cores
        if self.placement is Placement.GPU_MODEL_BASED:
            # Host cores running the cold SparseNet path.
            return self.sparse_threads * self.sparse_cores
        raise AssertionError(f"unhandled placement {self.placement}")

    def fits(self, server: ServerType) -> bool:
        """Hardware-resource constraint check."""
        if self.cpu_cores_used > server.cpu.cores:
            return False
        if self.placement.uses_gpu and not server.has_gpu:
            return False
        return True

    def with_(self, **changes) -> "ExecutionPlan":
        """A modified copy (the search's move operator)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact label, e.g. ``cpu_model_based 10x2 d=256``."""
        if self.placement is Placement.CPU_MODEL_BASED:
            return (
                f"{self.placement.value} {self.threads}x{self.cores_per_thread} "
                f"d={self.batch_size}"
            )
        if self.placement is Placement.CPU_SD_PIPELINE:
            return (
                f"{self.placement.value} s={self.sparse_threads}x{self.sparse_cores} "
                f"dns={self.dense_threads} d={self.batch_size}"
            )
        fusion = self.fusion_limit if self.fusion_limit else "none"
        return (
            f"{self.placement.value} g={self.threads} fusion={fusion} "
            f"s={self.sparse_threads}x{self.sparse_cores}"
        )
