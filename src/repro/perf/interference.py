"""Co-location interference on shared memory bandwidth and LLC.

On multi-core CPUs the co-located inference threads contend for memory
bandwidth and last-level cache (Section III-A: halving the number of
co-located threads "reduces interference").  We model two effects:

1. *Bandwidth saturation*: when the sum of per-thread bandwidth demand
   exceeds the socket's achievable bandwidth, every thread's effective
   share scales down proportionally.
2. *LLC contention*: each additional co-located thread evicts shared
   cache lines, inflating memory time by a small per-thread factor.

Both are deliberately simple -- what matters for reproducing the paper
is that throughput stops scaling linearly in thread count, creating the
concave QPS surface of Fig. 11(a).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InterferenceModel"]


@dataclass(frozen=True)
class InterferenceModel:
    """Tunable co-location interference model.

    Attributes:
        llc_penalty_per_thread: Fractional memory-time inflation added
            by each co-located thread beyond the first.
        max_llc_penalty: Cap on total LLC inflation.
    """

    llc_penalty_per_thread: float = 0.02
    max_llc_penalty: float = 0.5

    def __post_init__(self) -> None:
        if self.llc_penalty_per_thread < 0:
            raise ValueError("llc penalty must be >= 0")
        if self.max_llc_penalty < 0:
            raise ValueError("max penalty must be >= 0")

    def bandwidth_fraction(
        self, demand_bytes_per_s: float, peak_bytes_per_s: float
    ) -> float:
        """Fraction of its demanded bandwidth each thread actually gets.

        Returns 1.0 while aggregate demand fits under the peak; beyond
        saturation every thread is throttled fairly.
        """
        if demand_bytes_per_s < 0 or peak_bytes_per_s <= 0:
            raise ValueError("bandwidths must be non-negative/positive")
        if demand_bytes_per_s <= peak_bytes_per_s:
            return 1.0
        return peak_bytes_per_s / demand_bytes_per_s

    def llc_inflation(self, co_located_threads: int) -> float:
        """Multiplier (>= 1) on memory time from cache contention."""
        if co_located_threads < 1:
            raise ValueError("co_located_threads must be >= 1")
        penalty = self.llc_penalty_per_thread * (co_located_threads - 1)
        return 1.0 + min(penalty, self.max_llc_penalty)

    def memory_time_scale(
        self,
        co_located_threads: int,
        demand_bytes_per_s: float,
        peak_bytes_per_s: float,
    ) -> float:
        """Combined multiplier on a thread's memory time under co-location."""
        fraction = self.bandwidth_fraction(demand_bytes_per_s, peak_bytes_per_s)
        return self.llc_inflation(co_located_threads) / fraction
