"""PCIe data-loading model for host-accelerator transfers.

For GPU execution the inference pipeline has three stages -- queuing,
data loading, model inference (Fig. 7) -- and for multi-hot models the
data-loading stage dominates (65-83% of end-to-end latency for
DLRM-RMC3) because millions of sparse indices must cross a 16 GB/s
link.  Co-located threads contend for the same link.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PcieLink"]


@dataclass(frozen=True)
class PcieLink:
    """A host-device PCIe link shared by co-located inference threads.

    Attributes:
        bandwidth_bytes: Link bandwidth (PCIe Gen3 x16: 16 GB/s).
        latency_s: Fixed per-transfer latency (DMA setup + doorbell).
    """

    bandwidth_bytes: float = 16e9
    latency_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")

    def transfer_s(self, payload_bytes: float, sharers: int = 1) -> float:
        """Transfer time for one payload with ``sharers`` contending threads.

        Contention is modelled as fair bandwidth sharing: each of the
        ``sharers`` concurrently-transferring threads sees
        ``bandwidth / sharers``.
        """
        if payload_bytes < 0:
            raise ValueError("payload must be >= 0")
        if sharers < 1:
            raise ValueError("sharers must be >= 1")
        if payload_bytes == 0:
            return 0.0
        return self.latency_s + payload_bytes * sharers / self.bandwidth_bytes
