"""Near-memory-processing simulator and latency/energy LUT.

The paper evaluates NMP servers with the emulation methodology of
RecNMP: a cycle-level simulation of the DIMM-side gather-and-reduce is
run *offline* over sampled queries, its per-batch embedding-operator
latency and energy recorded in a lookup table (LUT), and the real-time
serving run consults the LUT instead of simulating (Section V, Fig. 13
"dummy SLS-NMP operator").

We reproduce exactly that structure: :func:`simulate_gather_reduce` is
a DRAM-timing-level model of rank-parallel pooling, :func:`build_lut`
sweeps it over batch sizes, and :class:`NmpLut` serves interpolated
lookups during serving and search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.memory import MemorySpec
from repro.models.ops import EmbeddingLookup, FLOAT_BYTES, Operator

__all__ = [
    "DramTiming",
    "NmpResult",
    "simulate_gather_reduce",
    "NmpLut",
    "build_lut",
    "DEFAULT_BATCH_GRID",
]

#: Batch sizes (items) the offline simulation sweeps.
DEFAULT_BATCH_GRID: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class DramTiming:
    """DDR4-grade DRAM timing parameters used by the NMP simulation.

    With bank-level parallelism a single rank sustains random-gather
    throughput close to what the host could pull through the channel;
    rank-level NMP parallelism multiplies that (RecNMP's key result).

    Attributes:
        t_startup_ns: Fixed command/launch latency before the first
            row read streams out (tRP + tRCD + tCAS scale).
        burst_bytes: Bytes delivered per column burst (64 B line).
        pj_per_byte_read: DRAM read energy.
        pj_per_byte_reduce: Near-memory add energy per byte.
        pj_per_byte_channel: Channel transfer energy per byte.
    """

    t_startup_ns: float = 90.0
    burst_bytes: float = 64.0
    pj_per_byte_read: float = 15.0
    pj_per_byte_reduce: float = 1.0
    pj_per_byte_channel: float = 20.0


@dataclass(frozen=True)
class NmpResult:
    """Output of one cycle-level gather-reduce simulation.

    Attributes:
        latency_s: Time for the NMP units to finish the batch and ship
            the pooled outputs over the channel.
        energy_j: DIMM-side energy (reads + reduces + channel traffic).
        rank_reads: Row reads performed by the busiest rank.
        channel_bytes: Bytes that actually crossed the channel.
    """

    latency_s: float
    energy_j: float
    rank_reads: int
    channel_bytes: float


def simulate_gather_reduce(
    op: EmbeddingLookup,
    items: int,
    memory: MemorySpec,
    timing: DramTiming | None = None,
) -> NmpResult:
    """Cycle-level-style simulation of one pooled embedding op on NMP DIMMs.

    Each of the ``memory.nmp_ranks`` rank-attached units gathers its
    share of the rows (embedding rows stripe uniformly across ranks),
    reduces locally, and only the pooled vectors transit the channel.
    Latency is the max of (a) the busiest rank's row-access time and
    (b) the channel time for pooled outputs -- rank work and channel
    transfer pipeline against each other.

    Args:
        op: A pooled embedding-lookup operator.
        items: Batch size.
        memory: An NMP memory spec (``nmp_ranks > 0``).
        timing: DRAM timing parameters.

    Raises:
        ValueError: For non-pooled ops or non-NMP memory.
    """
    if not memory.is_nmp:
        raise ValueError(f"{memory.name} has no NMP ranks")
    if not (op.pooled and op.pooling_factor > 1):
        raise ValueError(
            "NMP accelerates gather-and-reduce only; "
            f"{op.name} is a plain gather"
        )
    if items < 1:
        raise ValueError("items must be >= 1")
    timing = timing or DramTiming()

    total_lookups = int(math.ceil(op.lookups(items)))
    ranks = memory.nmp_ranks * memory.channels
    # Uniform row striping: the busiest rank gets the ceiling share.
    rank_reads = int(math.ceil(total_lookups / ranks))
    row_bytes = op.embedding_dim * FLOAT_BYTES
    # Bank-level parallelism lets one rank internally sustain the
    # random-gather bandwidth the host would see through its channel;
    # the NMP win is that all ranks gather concurrently.
    rank_gather_bw = memory.channel_bw_bytes * memory.gather_efficiency
    rank_time_s = (
        timing.t_startup_ns * 1e-9 + rank_reads * row_bytes / rank_gather_bw
    )

    channel_bytes = op.output_bytes(items)
    channel_time_s = channel_bytes / memory.peak_bw_bytes

    read_bytes = total_lookups * row_bytes
    energy_j = (
        read_bytes * timing.pj_per_byte_read
        + read_bytes * timing.pj_per_byte_reduce
        + channel_bytes * timing.pj_per_byte_channel
    ) * 1e-12

    return NmpResult(
        latency_s=max(rank_time_s, channel_time_s),
        energy_j=energy_j,
        rank_reads=rank_reads,
        channel_bytes=channel_bytes,
    )


class NmpLut:
    """Interpolating latency/energy LUT for NMP embedding operators.

    Keys are ``(embedding op identity, batch size)``; queries between
    grid points interpolate linearly (latency is near-linear in batch),
    and queries beyond the grid extrapolate from the last segment.
    """

    def __init__(self, memory: MemorySpec, timing: DramTiming | None = None) -> None:
        if not memory.is_nmp:
            raise ValueError(f"{memory.name} has no NMP ranks")
        self.memory = memory
        self.timing = timing or DramTiming()
        self._entries: dict[tuple, list[tuple[int, float, float]]] = {}

    @staticmethod
    def _op_key(op: EmbeddingLookup) -> tuple:
        return (
            op.num_tables,
            op.rows_per_table,
            op.embedding_dim,
            round(op.pooling_factor, 6),
        )

    def populate(
        self, op: EmbeddingLookup, batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID
    ) -> None:
        """Run the offline simulation over the batch grid for one op."""
        rows = []
        for batch in sorted(set(batch_grid)):
            result = simulate_gather_reduce(op, batch, self.memory, self.timing)
            rows.append((batch, result.latency_s, result.energy_j))
        self._entries[self._op_key(op)] = rows

    def _interpolate(
        self, rows: list[tuple[int, float, float]], items: int, column: int
    ) -> float:
        if items <= rows[0][0]:
            # Below the grid: scale down from the smallest entry.
            return rows[0][column] * items / rows[0][0]
        for (b0, *v0), (b1, *v1) in zip(rows, rows[1:]):
            if b0 <= items <= b1:
                frac = (items - b0) / (b1 - b0)
                return v0[column - 1] + frac * (v1[column - 1] - v0[column - 1])
        # Beyond the grid: extrapolate from the last segment slope.
        (b0, *v0), (b1, *v1) = rows[-2], rows[-1]
        slope = (v1[column - 1] - v0[column - 1]) / (b1 - b0)
        return v1[column - 1] + slope * (items - b1)

    def _rows_for(self, op: Operator) -> list[tuple[int, float, float]]:
        if not isinstance(op, EmbeddingLookup):
            raise TypeError(f"NMP LUT only serves embedding ops, got {op!r}")
        key = self._op_key(op)
        if key not in self._entries:
            # Lazily populate -- equivalent to running the offline
            # simulation on first encounter of a new operator shape.
            self.populate(op)
        return self._entries[key]

    def latency_s(self, op: Operator, items: int) -> float:
        """LUT latency for ``op`` at batch ``items`` (the dummy SLS-NMP op)."""
        return self._interpolate(self._rows_for(op), items, 1)

    def energy_j(self, op: Operator, items: int) -> float:
        """LUT DIMM-side energy for ``op`` at batch ``items``."""
        return self._interpolate(self._rows_for(op), items, 2)

    def __len__(self) -> int:
        return len(self._entries)


def build_lut(
    memory: MemorySpec,
    ops: list[EmbeddingLookup] = (),
    batch_grid: tuple[int, ...] = DEFAULT_BATCH_GRID,
    timing: DramTiming | None = None,
) -> NmpLut:
    """Build an NMP LUT, pre-populating it for the given operators."""
    lut = NmpLut(memory, timing)
    for op in ops:
        if op.pooled and op.pooling_factor > 1:
            lut.populate(op, batch_grid)
    return lut
