"""List scheduling of a computation graph onto parallel operator workers.

The DL-framework graph executor (Fig. 3) launches operators in
dependency order; with ``o`` parallel operator workers, independent
operators run concurrently but dependent ones serialize, leaving
workers idle -- the effect quantified in Fig. 5 (25-74% idle cycles for
2-4 workers).  This module reproduces that executor: a greedy
earliest-finish list scheduler over per-op latencies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.models.graph import Graph

__all__ = ["NodeSchedule", "ScheduleResult", "list_schedule", "list_makespan"]


@dataclass(frozen=True)
class NodeSchedule:
    """Placement of one node in the worker schedule."""

    name: str
    worker: int
    start_s: float
    finish_s: float

    @property
    def duration_s(self) -> float:
        return self.finish_s - self.start_s


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a graph on ``workers`` operator workers.

    Attributes:
        makespan_s: Wall time for the whole graph.
        busy_s: Total worker-seconds doing useful work.
        workers: Number of operator workers used.
        nodes: Per-node placements in start order.
    """

    makespan_s: float
    busy_s: float
    workers: int
    nodes: tuple[NodeSchedule, ...]

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-time spent idle (Fig. 5c's y-axis)."""
        total = self.makespan_s * self.workers
        if total == 0:
            return 0.0
        return 1.0 - self.busy_s / total

    @property
    def speedup_vs_serial(self) -> float:
        """Makespan improvement over single-worker execution."""
        if self.makespan_s == 0:
            return 1.0
        return self.busy_s / self.makespan_s


def list_schedule(
    graph: Graph, latencies: dict[str, float], workers: int
) -> ScheduleResult:
    """Greedy list scheduling of ``graph`` on ``workers`` workers.

    Ready nodes (all dependencies finished) are dispatched to the
    earliest-available worker in topological order -- the behaviour of
    a work-stealing graph executor with static priorities.

    Args:
        graph: The computation (sub-)graph.
        latencies: Per-node execution time in seconds.
        workers: Number of parallel operator workers (>= 1).

    Returns:
        The schedule with makespan and idle statistics.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    missing = [n.name for n in graph if n.name not in latencies]
    if missing:
        raise ValueError(f"missing latencies for nodes: {missing}")

    worker_free = [(0.0, w) for w in range(workers)]
    heapq.heapify(worker_free)
    finish: dict[str, float] = {}
    placements: list[NodeSchedule] = []

    for node in graph.topological_order():
        ready_at = max((finish[d] for d in node.deps), default=0.0)
        free_at, worker = heapq.heappop(worker_free)
        start = max(ready_at, free_at)
        end = start + latencies[node.name]
        finish[node.name] = end
        heapq.heappush(worker_free, (end, worker))
        placements.append(
            NodeSchedule(name=node.name, worker=worker, start_s=start, finish_s=end)
        )

    makespan = max((p.finish_s for p in placements), default=0.0)
    busy = sum(p.duration_s for p in placements)
    return ScheduleResult(
        makespan_s=makespan,
        busy_s=busy,
        workers=workers,
        nodes=tuple(placements),
    )


def list_makespan(
    topo: "Sequence[tuple[str, tuple[str, ...]]]",
    latencies: dict[str, float],
    workers: int,
) -> tuple[float, float]:
    """Makespan and busy-seconds of the greedy list schedule, nothing else.

    The evaluator's bandwidth-contention fixpoint bisects over dozens
    of candidate shares, re-scheduling the same graph each time; this
    fast path performs the identical float operations as
    :func:`list_schedule` (same dispatch order, same running max/sum)
    without materializing per-node :class:`NodeSchedule` records.

    Args:
        topo: ``(name, deps)`` pairs in topological order (e.g. from
            ``[(n.name, n.deps) for n in graph.topological_order()]``).
        latencies: Per-node execution time in seconds.
        workers: Number of parallel operator workers (>= 1).

    Returns:
        ``(makespan_s, busy_s)``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    worker_free = [(0.0, w) for w in range(workers)]
    heapq.heapify(worker_free)
    finish: dict[str, float] = {}
    makespan = 0.0
    busy = 0.0
    heappop = heapq.heappop
    heappush = heapq.heappush
    for name, deps in topo:
        ready_at = max((finish[d] for d in deps), default=0.0)
        free_at, worker = heappop(worker_free)
        start = max(ready_at, free_at)
        end = start + latencies[name]
        finish[name] = end
        heappush(worker_free, (end, worker))
        if end > makespan:
            makespan = end
        busy += end - start
    return makespan, busy
