"""Analytical performance models: rooflines, NMP LUT, PCIe, interference."""

from repro.perf.interference import InterferenceModel
from repro.perf.nmp import (
    DEFAULT_BATCH_GRID,
    DramTiming,
    NmpLut,
    NmpResult,
    build_lut,
    simulate_gather_reduce,
)
from repro.perf.opmodel import CpuOpModel, GpuOpModel, OpTiming
from repro.perf.pcie import PcieLink
from repro.perf.schedule import NodeSchedule, ScheduleResult, list_schedule

__all__ = [
    "InterferenceModel",
    "DramTiming",
    "NmpLut",
    "NmpResult",
    "DEFAULT_BATCH_GRID",
    "build_lut",
    "simulate_gather_reduce",
    "CpuOpModel",
    "GpuOpModel",
    "OpTiming",
    "PcieLink",
    "NodeSchedule",
    "ScheduleResult",
    "list_schedule",
]
