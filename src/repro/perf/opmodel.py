"""Roofline operator timing on CPUs and GPUs.

This is the substitute for the paper's real-system measurement: each
operator's latency on a device is the max of its compute time and its
memory time (they overlap on modern hardware), plus a fixed framework
dispatch / kernel-launch overhead.  The overhead term is what batching
amortizes; the memory term is what NMP attacks; the compute term is
what GPUs attack.  These three effects produce the paper's
characterization shapes (Figs. 4-7, 11).

Operator workers: per Section II-B one physical core hosts one operator
worker, and one operator executes on one worker.  CPU op timing is
therefore single-core; parallelism across *independent* operators is
modelled by list scheduling in :mod:`repro.perf.schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.memory import MemorySpec
from repro.models.ops import Operator, OpKind
from repro.perf.nmp import NmpLut

__all__ = ["OpTiming", "CpuOpModel", "GpuOpModel"]

#: Framework dispatch overhead per operator on the host (Caffe2-like).
CPU_DISPATCH_OVERHEAD_S = 15e-6

#: Sequential-timestep overhead of recurrent cells per element of
#: sequence, reflecting that a GRU cannot use wide GEMMs.
_GRU_STEP_PENALTY = 2.0


@dataclass(frozen=True)
class OpTiming:
    """Latency decomposition of one operator execution.

    Attributes:
        compute_s: Time limited by arithmetic throughput.
        memory_s: Time limited by memory bandwidth.
        overhead_s: Fixed dispatch/launch overhead.
    """

    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def latency_s(self) -> float:
        """Roofline latency: overhead plus the binding resource."""
        return self.overhead_s + max(self.compute_s, self.memory_s)

    @property
    def memory_bound(self) -> bool:
        return self.memory_s > self.compute_s


class CpuOpModel:
    """Single-core operator timing on a host CPU with channel memory.

    Args:
        cpu: Host CPU spec.
        memory: Attached memory spec (DDR4 or NMP DIMMs).
        nmp_lut: Pre-built NMP latency LUT.  Required when ``memory``
            is an NMP configuration (mirrors the paper's emulation
            methodology: the cycle-level simulation runs offline and
            serving consults the LUT).
    """

    def __init__(
        self,
        cpu: CpuSpec,
        memory: MemorySpec,
        nmp_lut: NmpLut | None = None,
    ) -> None:
        if memory.is_nmp and nmp_lut is None:
            raise ValueError(
                f"{memory.name} requires an NMP LUT (build one with "
                "repro.perf.nmp.build_lut)"
            )
        self.cpu = cpu
        self.memory = memory
        self.nmp_lut = nmp_lut

    def op_timing(
        self, op: Operator, items: int, bw_fraction: float = 1.0
    ) -> OpTiming:
        """Latency of ``op`` on one operator worker (one physical core).

        Args:
            op: The operator.
            items: Batch size in items.
            bw_fraction: Share of the memory system this thread gets
                under co-location (see :mod:`repro.perf.interference`).
        """
        if items < 1:
            raise ValueError("items must be >= 1")
        if not 0.0 < bw_fraction <= 1.0:
            raise ValueError("bw_fraction must be in (0, 1]")

        if op.kind.is_sparse and self.memory.is_nmp and self._nmp_eligible(op):
            assert self.nmp_lut is not None
            # Gather-and-reduce executes near-memory; the host only
            # receives pooled vectors.  Latency comes from the LUT.
            memory_s = self.nmp_lut.latency_s(op, items) / bw_fraction
            return OpTiming(
                compute_s=0.0,
                memory_s=memory_s,
                overhead_s=CPU_DISPATCH_OVERHEAD_S,
            )

        flops = op.flops(items)
        compute_s = flops / self.cpu.effective_flops(1) if flops else 0.0
        if op.kind is OpKind.GRU:
            compute_s *= _GRU_STEP_PENALTY

        if op.kind.is_sparse:
            bw = self.memory.gather_bw_bytes * bw_fraction
        else:
            # Dense streaming accesses achieve close to peak bandwidth.
            bw = self.memory.peak_bw_bytes * bw_fraction
        memory_s = op.mem_bytes(items) / bw

        return OpTiming(
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=CPU_DISPATCH_OVERHEAD_S,
        )

    def _nmp_eligible(self, op: Operator) -> bool:
        """NMP accelerates only gather-and-reduce (pooled) lookups."""
        return op.kind is OpKind.EMBEDDING_GATHER_REDUCE


class GpuOpModel:
    """Operator timing on a PCIe accelerator.

    Co-location (MPS-style sharing, Section II-B) divides the device:
    each of ``co_located`` threads sees ``1 / co_located`` of compute
    and HBM bandwidth.  Kernels within one thread run sequentially, so
    graph latency is just the sum of op latencies (handled by callers).
    """

    def __init__(self, gpu: GpuSpec) -> None:
        self.gpu = gpu

    def op_timing(
        self, op: Operator, items: int, co_located: int = 1
    ) -> OpTiming:
        """Latency of ``op`` for a batch of ``items`` under co-location."""
        if items < 1:
            raise ValueError("items must be >= 1")
        if co_located < 1:
            raise ValueError("co_located must be >= 1")

        share = 1.0 / co_located
        flops = op.flops(items)
        eff = self.gpu.effective_flops(items) * share
        compute_s = flops / eff if flops else 0.0
        if op.kind is OpKind.GRU:
            compute_s *= _GRU_STEP_PENALTY

        if op.kind.is_sparse:
            bw = self.gpu.hbm_bw_bytes * self.gpu.gather_efficiency * share
        else:
            bw = self.gpu.hbm_bw_bytes * share
        memory_s = op.mem_bytes(items) / bw

        return OpTiming(
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=self.gpu.kernel_launch_s,
        )
