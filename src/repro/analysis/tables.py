"""Plain-text table/series formatting for benchmarks and examples.

The benchmark harness regenerates every paper table/figure as printed
rows; these helpers keep the output aligned and consistent without any
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude >= 1e5 or (0 < magnitude < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted to ``precision``.
        precision: Decimal places for floats.
        title: Optional title line above the table.
    """
    rendered = [[_render_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    pairs: Iterable[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 2,
    title: str = "",
    width: int = 40,
) -> str:
    """Render an (x, y) series as an ASCII bar strip (figure stand-in)."""
    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty series")
    y_max = max(y for _, y in pairs)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>10}  {y_label}")
    for x, y in pairs:
        bar = "#" * int(round(width * (y / y_max))) if y_max > 0 else ""
        lines.append(f"{x:>10.2f}  {y:>14,.{precision}f}  {bar}")
    return "\n".join(lines)


def print_table(*args, **kwargs) -> None:
    """Format and print a table (see :func:`format_table`)."""
    print(format_table(*args, **kwargs))


def print_series(*args, **kwargs) -> None:
    """Format and print a series (see :func:`format_series`)."""
    print(format_series(*args, **kwargs))
