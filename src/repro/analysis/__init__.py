"""Output formatting for benchmarks and examples."""

from repro.analysis.tables import (
    format_series,
    format_table,
    print_series,
    print_table,
)

__all__ = ["format_series", "format_table", "print_series", "print_table"]
