"""GPU accelerator specifications: NVIDIA P100 and V100 (Table II).

The perf model needs, beyond the published peak numbers, a batch-
efficiency curve (small inference batches badly under-utilize a GPU --
the root of the query-fusion win in Fig. 6) and a kernel-launch
overhead (what query fusion amortizes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "GPU_P100", "GPU_V100"]


@dataclass(frozen=True)
class GpuSpec:
    """A PCIe-attached DL accelerator.

    Attributes:
        name: Marketing name.
        sms: Streaming multiprocessors (Table II).
        peak_flops: Peak fp32 FLOP/s.
        hbm_bw_bytes: HBM bandwidth (900 GB/s on both per Table II).
        memory_bytes: Device memory (16 GB on both).
        pcie_bw_bytes: Host link bandwidth (PCIe Gen3 x16 ~ 16 GB/s).
        tdp_w: Board power.
        idle_w: Serving-idle power (MPS contexts resident, clocks
            pinned) -- the paper notes GPU energy efficiency "is
            constrained by GPUs' high leakage power".
        kernel_launch_s: Fixed host+device overhead per operator launch.
        batch_half_saturation: Batch size (items) at which the device
            reaches half of peak utilization; the efficiency curve is
            ``b / (b + batch_half_saturation)``.
        gather_efficiency: Fraction of HBM bandwidth achieved by
            embedding gathers on-device.
    """

    name: str
    sms: int
    peak_flops: float
    hbm_bw_bytes: float
    memory_bytes: float
    pcie_bw_bytes: float
    tdp_w: float
    idle_w: float
    kernel_launch_s: float = 12e-6
    batch_half_saturation: float = 512.0
    gather_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.sms < 1:
            raise ValueError("sms must be >= 1")
        if min(self.peak_flops, self.hbm_bw_bytes, self.memory_bytes) <= 0:
            raise ValueError("peak numbers must be positive")
        if self.pcie_bw_bytes <= 0:
            raise ValueError("pcie bandwidth must be positive")
        if not 0 <= self.idle_w <= self.tdp_w:
            raise ValueError("idle power must be within [0, TDP]")
        if self.batch_half_saturation <= 0:
            raise ValueError("batch_half_saturation must be positive")

    def utilization(self, batch_items: float) -> float:
        """Fraction of peak compute achieved at a given batch size.

        A saturating curve: tiny inference batches keep most SMs idle
        (the ~25% GPU utilization of Fig. 7a), large fused batches
        approach peak.
        """
        if batch_items <= 0:
            return 0.0
        return batch_items / (batch_items + self.batch_half_saturation)

    def effective_flops(self, batch_items: float) -> float:
        """Achievable FLOP/s at a given batch size."""
        return self.peak_flops * self.utilization(batch_items)


#: NVIDIA P100 (Table II: 56 SMs, 1480 MHz, 16 GB HBM).
GPU_P100 = GpuSpec(
    name="NVIDIA P100",
    sms=56,
    peak_flops=9.5e12,
    hbm_bw_bytes=732e9,
    memory_bytes=16e9,
    pcie_bw_bytes=16e9,
    tdp_w=300.0,
    idle_w=90.0,
)

#: NVIDIA V100 (Table II: 80 SMs, 1530 MHz, 16 GB HBM @ 900 GB/s).
GPU_V100 = GpuSpec(
    name="NVIDIA V100",
    sms=80,
    peak_flops=14.8e12,
    hbm_bw_bytes=900e9,
    memory_bytes=16e9,
    pcie_bw_bytes=16e9,
    tdp_w=300.0,
    idle_w=95.0,
)
