"""Memory subsystem specifications: DDR4 DIMMs and NMP DIMMs (Table II).

The NMP configurations model a RecNMP-style DIMM in which each rank has
a near-memory processing unit performing the gather-and-reduce locally:
``NMPxN`` exposes N-way rank-level parallelism for pooled embedding
reads and returns only the pooled vector over the channel.  For one-hot
(non-pooled) lookups the NMP DIMM behaves exactly like regular DRAM --
the property behind the paper's Fig. 15 observation that DIN/DIEN/
MT-WnD gain nothing from NMP while paying its idle power.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MemorySpec",
    "DDR4_T1",
    "DDR4_T2",
    "NMP_X2",
    "NMP_X4",
    "NMP_X8",
]


@dataclass(frozen=True)
class MemorySpec:
    """A channel-attached memory configuration.

    Attributes:
        name: Label as used in Table II (``DDR4``, ``NMPx2``...).
        channels: Memory channels populated.
        dimms_per_channel: DIMMs per channel.
        ranks_per_dimm: Ranks per DIMM.
        capacity_bytes: Total capacity.
        channel_bw_bytes: Peak bandwidth of a single channel
            (DDR4-2666: ~21.3 GB/s).
        tdp_w: Power budget of the memory subsystem (Table II).
        idle_w: Idle (background + NMP-unit leakage) power.  NMP DIMMs
            pay extra idle power for their processing units.
        nmp_ranks: Rank-level NMP parallelism; 0 means plain DDR4.
        gather_efficiency: Fraction of peak bandwidth achieved by
            random-row gathers (row-buffer misses dominate).
    """

    name: str
    channels: int
    dimms_per_channel: int
    ranks_per_dimm: int
    capacity_bytes: float
    channel_bw_bytes: float
    tdp_w: float
    idle_w: float
    nmp_ranks: int = 0
    gather_efficiency: float = 0.4

    def __post_init__(self) -> None:
        if min(self.channels, self.dimms_per_channel, self.ranks_per_dimm) < 1:
            raise ValueError("channel/DIMM/rank counts must be >= 1")
        if self.capacity_bytes <= 0 or self.channel_bw_bytes <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        if self.nmp_ranks < 0:
            raise ValueError("nmp_ranks must be >= 0")
        if not 0 < self.gather_efficiency <= 1:
            raise ValueError("gather_efficiency must be in (0, 1]")
        if not 0 <= self.idle_w <= self.tdp_w:
            raise ValueError("idle power must be within [0, TDP]")

    @property
    def is_nmp(self) -> bool:
        return self.nmp_ranks > 0

    @property
    def peak_bw_bytes(self) -> float:
        """Peak host-visible bandwidth across all channels."""
        return self.channels * self.channel_bw_bytes

    @property
    def gather_bw_bytes(self) -> float:
        """Achievable bandwidth for host-side random gathers."""
        return self.peak_bw_bytes * self.gather_efficiency

    @property
    def nmp_gather_reduce_bw_bytes(self) -> float:
        """Effective gather-reduce bandwidth with rank-level NMP.

        Rank-parallel near-memory reduction multiplies the internal
        gather bandwidth by the rank parallelism; only pooled outputs
        cross the channel, so the channel ceases to be the bottleneck.
        For plain DDR4 this equals :attr:`gather_bw_bytes`.
        """
        if not self.is_nmp:
            return self.gather_bw_bytes
        return self.gather_bw_bytes * self.nmp_ranks


#: 64 GB single-rank DDR4 paired with CPU-T1 (Table II).
DDR4_T1 = MemorySpec(
    name="DDR4",
    channels=4,
    dimms_per_channel=1,
    ranks_per_dimm=1,
    capacity_bytes=64e9,
    channel_bw_bytes=19.2e9,  # DDR4-2400 per channel
    tdp_w=28.0,
    idle_w=8.0,
)

#: 128 GB dual-rank DDR4 paired with CPU-T2 (Table II).
DDR4_T2 = MemorySpec(
    name="DDR4",
    channels=4,
    dimms_per_channel=1,
    ranks_per_dimm=2,
    capacity_bytes=128e9,
    channel_bw_bytes=21.3e9,  # DDR4-2666 per channel
    tdp_w=50.0,
    idle_w=14.0,
)

#: RecNMP-style DIMMs: x2 / x4 / x8 rank-level parallelism (Table II).
NMP_X2 = MemorySpec(
    name="NMPx2",
    channels=4,
    dimms_per_channel=1,
    ranks_per_dimm=2,
    capacity_bytes=128e9,
    channel_bw_bytes=21.3e9,
    tdp_w=50.0,
    idle_w=20.0,
    nmp_ranks=2,
)

NMP_X4 = MemorySpec(
    name="NMPx4",
    channels=4,
    dimms_per_channel=2,
    ranks_per_dimm=2,
    capacity_bytes=256e9,
    channel_bw_bytes=21.3e9,
    tdp_w=100.0,
    idle_w=40.0,
    nmp_ranks=4,
)

NMP_X8 = MemorySpec(
    name="NMPx8",
    channels=4,
    dimms_per_channel=4,
    ranks_per_dimm=2,
    capacity_bytes=512e9,
    channel_bw_bytes=21.3e9,
    tdp_w=200.0,
    idle_w=80.0,
    nmp_ranks=8,
)
