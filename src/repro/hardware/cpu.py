"""CPU specifications (paper Table II).

Two Intel Xeon generations represent the CPU heterogeneity of the
fleet: CPU-T1 (Xeon D-2191) and CPU-T2 (Xeon Gold 6138).  Beyond the
published core counts/frequencies we carry the microarchitectural
throughput numbers the perf models need (peak FLOPs per core, gather
efficiency) with values representative of Skylake-era parts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuSpec", "CPU_T1", "CPU_T2"]


@dataclass(frozen=True)
class CpuSpec:
    """A server-grade CPU.

    Attributes:
        name: Marketing name (Table II).
        cores: Physical core count (inference threads pin to physical
            cores without hyperthreading, Section II-B).
        frequency_hz: Sustained all-core frequency.
        flops_per_cycle_per_core: Peak fp32 FLOPs per cycle per core
            (AVX-512 FMA on both parts).
        llc_bytes: Last-level cache size.
        tdp_w: Thermal design power.
        idle_w: Package idle power (measured Xeons idle at roughly a
            third of TDP).
        gemm_efficiency: Achievable fraction of peak FLOPs for the
            small/medium GEMMs of recommendation DenseNets.
    """

    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle_per_core: float
    llc_bytes: float
    tdp_w: float
    idle_w: float
    gemm_efficiency: float = 0.55

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.frequency_hz <= 0 or self.flops_per_cycle_per_core <= 0:
            raise ValueError("frequency and FLOPs/cycle must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise ValueError("gemm_efficiency must be in (0, 1]")
        if not 0 <= self.idle_w <= self.tdp_w:
            raise ValueError("idle power must be within [0, TDP]")

    @property
    def peak_flops_per_core(self) -> float:
        """Peak fp32 FLOP/s of a single physical core."""
        return self.frequency_hz * self.flops_per_cycle_per_core

    @property
    def peak_flops(self) -> float:
        """Peak fp32 FLOP/s of the whole socket."""
        return self.peak_flops_per_core * self.cores

    def effective_flops(self, cores: int) -> float:
        """Achievable GEMM FLOP/s on ``cores`` cores."""
        if not 1 <= cores <= self.cores:
            raise ValueError(
                f"{self.name} has {self.cores} cores, requested {cores}"
            )
        return self.peak_flops_per_core * cores * self.gemm_efficiency


#: Intel Xeon D-2191 -- 18 cores @ 1.6 GHz (Table II).
CPU_T1 = CpuSpec(
    name="Intel Xeon D-2191",
    cores=18,
    frequency_hz=1.6e9,
    flops_per_cycle_per_core=32.0,
    llc_bytes=24.75e6,
    tdp_w=86.0,
    idle_w=28.0,
)

#: Intel Xeon Gold 6138 -- 20 cores @ 2.0 GHz (Table II).
CPU_T2 = CpuSpec(
    name="Intel Xeon Gold 6138",
    cores=20,
    frequency_hz=2.0e9,
    flops_per_cycle_per_core=32.0,
    llc_bytes=27.5e6,
    tdp_w=125.0,
    idle_w=40.0,
)
