"""Server types T1-T10 and the heterogeneous fleet (paper Table II).

Each :class:`ServerType` is a permutation of CPU + memory (+ GPU); the
standard fleet carries the paper's availability vector N1-N10
(100, 100, 15, 10, 5, 10, 5, 6, 4, 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CPU_T1, CPU_T2, CpuSpec
from repro.hardware.gpu import GPU_P100, GPU_V100, GpuSpec
from repro.hardware.memory import (
    DDR4_T1,
    DDR4_T2,
    MemorySpec,
    NMP_X2,
    NMP_X4,
    NMP_X8,
)
from repro.hardware.power import ComponentUtilization, server_power_w

__all__ = [
    "ServerType",
    "SERVER_TYPES",
    "SERVER_AVAILABILITY",
    "get_server_type",
    "standard_fleet",
]


@dataclass(frozen=True)
class ServerType:
    """One of the heterogeneous server architectures of Table II.

    Attributes:
        name: ``"T1"`` ... ``"T10"``.
        cpu: Host CPU.
        memory: Channel memory (plain DDR4 or NMP).
        gpu: Optional PCIe accelerator.
    """

    name: str
    cpu: CpuSpec
    memory: MemorySpec
    gpu: GpuSpec | None = None

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    @property
    def has_nmp(self) -> bool:
        return self.memory.is_nmp

    @property
    def label(self) -> str:
        """Human-readable composition, e.g. ``CPU-T2+NMPx2+V100``."""
        cpu_label = "CPU-T1" if self.cpu is CPU_T1 else "CPU-T2"
        parts = [cpu_label]
        if self.has_nmp:
            parts.append(self.memory.name)
        if self.gpu is not None:
            parts.append(self.gpu.name.split()[-1])
        return "+".join(parts)

    @property
    def tdp_w(self) -> float:
        """Aggregate TDP -- the worst-case provisioned power of the box."""
        total = self.cpu.tdp_w + self.memory.tdp_w
        if self.gpu is not None:
            total += self.gpu.tdp_w
        return total

    @property
    def idle_w(self) -> float:
        total = self.cpu.idle_w + self.memory.idle_w
        if self.gpu is not None:
            total += self.gpu.idle_w
        return total

    def power_w(self, util: ComponentUtilization) -> float:
        """Wall power at the given component utilizations."""
        return server_power_w(self.cpu, self.memory, self.gpu, util)


#: The ten Table II server types, keyed by name.
SERVER_TYPES: dict[str, ServerType] = {
    "T1": ServerType("T1", CPU_T1, DDR4_T1),
    "T2": ServerType("T2", CPU_T2, DDR4_T2),
    "T3": ServerType("T3", CPU_T2, NMP_X2),
    "T4": ServerType("T4", CPU_T2, NMP_X4),
    "T5": ServerType("T5", CPU_T2, NMP_X8),
    "T6": ServerType("T6", CPU_T1, DDR4_T1, GPU_P100),
    "T7": ServerType("T7", CPU_T2, DDR4_T2, GPU_V100),
    "T8": ServerType("T8", CPU_T2, NMP_X2, GPU_V100),
    "T9": ServerType("T9", CPU_T2, NMP_X4, GPU_V100),
    "T10": ServerType("T10", CPU_T2, NMP_X8, GPU_V100),
}

#: Availability N1-N10 of each type in the prototype cluster (Table II).
SERVER_AVAILABILITY: dict[str, int] = {
    "T1": 100,
    "T2": 100,
    "T3": 15,
    "T4": 10,
    "T5": 5,
    "T6": 10,
    "T7": 5,
    "T8": 6,
    "T9": 4,
    "T10": 2,
}


def get_server_type(name: str) -> ServerType:
    """Look up a Table II server type by name (``"T1"`` ... ``"T10"``)."""
    try:
        return SERVER_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown server type {name!r}; available: {', '.join(SERVER_TYPES)}"
        ) from None


def standard_fleet() -> list[tuple[ServerType, int]]:
    """The full heterogeneous fleet with Table II availabilities."""
    return [(SERVER_TYPES[name], SERVER_AVAILABILITY[name]) for name in SERVER_TYPES]
