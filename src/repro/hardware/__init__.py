"""Heterogeneous server-architecture substrate (paper Table II)."""

from repro.hardware.cpu import CPU_T1, CPU_T2, CpuSpec
from repro.hardware.gpu import GPU_P100, GPU_V100, GpuSpec
from repro.hardware.memory import (
    DDR4_T1,
    DDR4_T2,
    MemorySpec,
    NMP_X2,
    NMP_X4,
    NMP_X8,
)
from repro.hardware.power import (
    ComponentUtilization,
    linear_power,
    server_power_w,
)
from repro.hardware.server import (
    SERVER_AVAILABILITY,
    SERVER_TYPES,
    ServerType,
    get_server_type,
    standard_fleet,
)

__all__ = [
    "CpuSpec",
    "CPU_T1",
    "CPU_T2",
    "GpuSpec",
    "GPU_P100",
    "GPU_V100",
    "MemorySpec",
    "DDR4_T1",
    "DDR4_T2",
    "NMP_X2",
    "NMP_X4",
    "NMP_X8",
    "ComponentUtilization",
    "linear_power",
    "server_power_w",
    "ServerType",
    "SERVER_TYPES",
    "SERVER_AVAILABILITY",
    "get_server_type",
    "standard_fleet",
]
