"""Component-level power models (substitute for RAPL / nvidia-smi).

The paper measures wall power with Intel RAPL (CPU+DRAM) and nvidia-smi
(GPU).  We model each component as ``idle + (tdp - idle) * utilization``
-- the standard linear power proxy -- and sum per-server.  What matters
for reproducing the scheduler decisions is that the *relative* power of
server types tracks Table II TDPs: NMP DIMMs tax idle power, GPUs have
high leakage, busy CPUs approach TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.memory import MemorySpec

__all__ = ["ComponentUtilization", "linear_power", "server_power_w"]


@dataclass(frozen=True)
class ComponentUtilization:
    """Utilization of each server component in [0, 1].

    Attributes:
        cpu: Average busy fraction across all cores.
        memory: Memory-bandwidth demand as a fraction of peak.
        gpu: GPU busy fraction (0 when no GPU present).
    """

    cpu: float = 0.0
    memory: float = 0.0
    gpu: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (("cpu", self.cpu), ("memory", self.memory), ("gpu", self.gpu)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} utilization must be in [0, 1], got {value}")


def linear_power(idle_w: float, tdp_w: float, utilization: float) -> float:
    """The linear idle-to-TDP power proxy for one component."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    return idle_w + (tdp_w - idle_w) * utilization


def server_power_w(
    cpu: CpuSpec,
    memory: MemorySpec,
    gpu: GpuSpec | None,
    util: ComponentUtilization,
) -> float:
    """Total server power for the given component utilizations."""
    total = linear_power(cpu.idle_w, cpu.tdp_w, util.cpu)
    total += linear_power(memory.idle_w, memory.tdp_w, util.memory)
    if gpu is not None:
        total += linear_power(gpu.idle_w, gpu.tdp_w, util.gpu)
    return total
