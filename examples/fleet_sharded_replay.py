"""Scale-out replay: shard the fleet by model, sketch the report.

A fleet replay is one discrete-event loop, so a long multi-model day
costs wall-clock serially and report memory linearly.  This
walkthrough shows the two scale-out levers added for exactly that:

1. replay a four-model day sharded across worker processes
   (`repro.fleet.run_fleet_sharded`, the library face of
   `fleet --shards`) and verify the merged report is *bit-identical*
   to the single-process engine -- same floats, not "close";
2. replay the same day with `percentile_mode="sketch"` and show the
   percentiles land next to the exact ones while the report holds
   O(models) state instead of every completion -- the mode that lets
   a multi-day capture replay in bounded memory;
3. show the guard rails: fault injection refuses to shard (dead
   domains couple models), and a queue-aware policy still shards
   fine because each model's replicas live in exactly one worker.

Run:  python examples/fleet_sharded_replay.py
"""

from __future__ import annotations

from repro.cluster.state import Allocation
from repro.fleet import FaultSchedule, build_fleet
from repro.fleet.sharded import plan_shards, run_fleet_sharded
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload
from repro.traces import DiurnalProcess, FleetArrivals

MODELS = ("DLRM-RMC1", "DLRM-RMC2", "DIN", "MT-WnD")
DURATION_S = 4.0
SEED = 11


def main() -> None:
    models = {name: build_model(name) for name in MODELS}
    workloads = {
        name: QueryWorkload.for_model(m.config.mean_query_size)
        for name, m in models.items()
    }
    sla = {name: m.sla_ms for name, m in models.items()}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile(
        [SERVER_TYPES[s] for s in ("T2", "T3")], list(models.values())
    )

    allocation = Allocation()
    for name in MODELS:
        allocation.add("T2", name, 3)
        allocation.add("T3", name, 2)

    capacity = {
        name: 3 * table.qps("T2", name) + 2 * table.qps("T3", name)
        for name in MODELS
    }
    stream = FleetArrivals(
        {
            name: DiurnalProcess(
                workloads[name], 0.6 * capacity[name], DURATION_S, noise=0.1
            )
            for name in MODELS
        },
        seed=SEED,
    )

    # -- 1. sharded replay, bit-identical merge ------------------------
    print(f"shard plan (2 workers): {plan_shards(list(MODELS), 2)}")

    def replay(shards, **kwargs):
        return run_fleet_sharded(
            allocation, table, models, workloads, stream,
            shards=shards, policy="weighted", sla_ms=sla, seed=SEED,
            warmup_s=DURATION_S * 0.05, **kwargs,
        )

    single = replay(1)
    sharded = replay(2)
    print("replayed the day single-process and across 2 worker shards:")
    for name in MODELS:
        s1, s2 = single.per_model[name], sharded.per_model[name]
        same = "==" if (s1.p99_ms, s1.completed) == (s2.p99_ms, s2.completed) else "!="
        print(
            f"  {name:10s} served {s2.completed:6d}  "
            f"p99 {s2.p99_ms:7.2f} ms  (single {s1.p99_ms:7.2f} ms) {same}"
        )
    identical = sharded.to_dict() == single.to_dict()
    print(f"  -> full reports bit-identical: {identical}\n")
    assert identical

    # -- 2. sketch-backed percentiles ----------------------------------
    sketch = replay(2, percentile_mode="sketch")
    print("same replay, percentile_mode='sketch' (O(models) report memory):")
    for name in MODELS:
        ex, sk = single.per_model[name], sketch.per_model[name]
        print(
            f"  {name:10s} p99 exact {ex.p99_ms:7.2f} ms | "
            f"sketch {sk.p99_ms:7.2f} ms | served {sk.completed:6d} "
            f"({'==' if sk.completed == ex.completed else '!='} exact)"
        )
    print("  -> counting stats stay float-identical; only the")
    print("     percentiles are P-squared estimates\n")

    # -- 3. the guard rails --------------------------------------------
    try:
        run_fleet_sharded(
            allocation, table, models, workloads, stream,
            shards=2, policy="weighted", sla_ms=sla, seed=SEED,
            faults=FaultSchedule.parse("crash@1.0:0"),
        )
    except TypeError:
        # run_fleet_sharded has no faults parameter at all -- sharding
        # is fault-free by construction; the CLI rejects --faults with
        # --shards > 1 for the same reason.
        print("guard rail: sharded replay is fault-free by construction")
        print("            (fault injection couples shards through dead")
        print("             domains; use percentile-mode sketch to bound")
        print("             memory on fault replays instead)")


if __name__ == "__main__":
    main()
