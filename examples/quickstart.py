"""Quickstart: find the best serving configuration for one model.

Walks the core Hercules loop on a single server:

1. build a production-scale recommendation model (Table I);
2. run the gradient-based task-scheduling search (Algorithm 1) against
   the model's SLA target on a CPU+GPU server;
3. compare with the DeepRecSys/Baymax baseline;
4. validate the chosen operating point with the discrete-event
   simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.hardware import SERVER_TYPES
from repro.models import build_model, partition_model
from repro.scheduling import BaselineTaskScheduler, HerculesTaskScheduler
from repro.sim import QueryWorkload, ServerEvaluator, simulate

MODEL_NAME = "DLRM-RMC3"
SERVER_NAME = "T7"  # CPU-T2 + V100


def main() -> None:
    model = build_model(MODEL_NAME)
    server = SERVER_TYPES[SERVER_NAME]
    evaluator = ServerEvaluator(server)
    workload = QueryWorkload.for_model(model.config.mean_query_size)

    print(
        f"Searching scheduling space for {model.name} "
        f"(SLA {model.sla_ms:.0f} ms) on {server.name} ({server.label})\n"
    )

    hercules = HerculesTaskScheduler(evaluator, model, workload).search()
    baseline = BaselineTaskScheduler(evaluator, model, workload).search()

    print_table(
        ["scheduler", "plan", "QPS", "p99 ms", "power W", "QPS/W"],
        [
            [
                "DeepRecSys+Baymax",
                baseline.plan.describe() if baseline.plan else "-",
                round(baseline.perf.qps),
                round(baseline.perf.latency.p99_ms, 1),
                round(baseline.perf.power_w),
                round(baseline.perf.qps_per_watt, 1),
            ],
            [
                "Hercules",
                hercules.plan.describe() if hercules.plan else "-",
                round(hercules.perf.qps),
                round(hercules.perf.latency.p99_ms, 1),
                round(hercules.perf.power_w),
                round(hercules.perf.qps_per_watt, 1),
            ],
        ],
        title="Latency-bounded operating points",
    )
    gain = hercules.perf.qps / baseline.perf.qps
    print(
        f"\nHercules improvement: {gain:.2f}x latency-bounded throughput "
        f"({hercules.evaluations} configurations searched)\n"
    )

    # Replay the winning plan in the discrete-event simulator at 80% of
    # the profiled throughput and confirm the tail latency holds.
    plan = hercules.plan
    needs_device = plan.placement.uses_gpu
    partitioned = partition_model(
        model,
        device_memory_bytes=server.gpu.memory_bytes if needs_device else None,
        co_location=plan.threads if needs_device else 1,
    )
    target_qps = hercules.perf.qps * 0.8
    des = simulate(
        evaluator, partitioned, workload, plan, arrival_qps=target_qps,
        duration_s=15.0,
    )
    print_table(
        ["metric", "analytical (at peak)", "DES (at 80% load)"],
        [
            ["QPS", round(hercules.perf.qps), round(des.qps)],
            ["p50 ms", round(hercules.perf.latency.p50_ms, 2), round(des.latency.p50_ms, 2)],
            ["p99 ms", round(hercules.perf.latency.p99_ms, 2), round(des.latency.p99_ms, 2)],
            ["power W", round(hercules.perf.power_w), round(des.power_w)],
        ],
        title="Discrete-event validation of the chosen plan",
    )
    assert des.latency.p99_ms <= model.sla_ms, "DES violated the SLA!"
    print("\nSLA holds under discrete-event replay.")


if __name__ == "__main__":
    main()
