"""Fault-aware provisioning: what a target availability costs in power.

The `fleet_faults` example shows the fleet degrading; this walkthrough
closes the loop the degradation motivates:

1. profile a small T2 fleet and declare correlated fault domains
   (racks of two replicas) with a scripted mid-run rack outage;
2. replay the fault-blind allocation (the paper's fixed over-provision
   rate R, chosen without measuring faults) and watch it miss the
   availability target;
3. run ``provision_fault_aware``: it iterates fault-injected replays,
   feeding measured service availability back into R until it finds
   the smallest rate meeting the target;
4. print the search trajectory and the verdict -- the chosen R, the
   extra standby power it costs, and the measured availability it
   buys.

Run:  python examples/fault_aware_provisioning.py
"""

from __future__ import annotations

from repro.cluster import HerculesClusterScheduler
from repro.fleet import FaultSchedule, build_fleet_trace, provision_fault_aware
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"
DURATION_S = 3.0
SEED = 11
TARGET = 0.999
#: Demand in T2 replica-equivalents: the R=0 allocation runs ~90%
#: utilized, so losing a rack overloads the survivors and only
#: provisioned headroom can absorb it.
LOAD_UNITS = 4.5


def main() -> None:
    model = build_model(MODEL)
    models = {MODEL: model}
    workloads = {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [model])
    tup = table.get("T2", MODEL)
    loads = {MODEL: LOAD_UNITS * tup.qps}
    trace = build_fleet_trace(
        workloads, {MODEL: [(loads[MODEL], DURATION_S)]}, seed=SEED
    )
    scheduler = HerculesClusterScheduler(table, {"T2": 20})

    # Racks of two; rack 0 dies mid-run and comes back half a second
    # later.  Same grammar as `python -m repro.cli fleet --faults`.
    faults = FaultSchedule.parse(
        f"domain:size=2;crash@{DURATION_S * 0.45}:dom0+0.5"
    )
    print(
        f"{len(trace)} queries over {DURATION_S:.0f}s; rack outage at "
        f"t={DURATION_S * 0.45:.2f}s; target service availability "
        f"{TARGET * 100:.1f}%\n"
    )

    outcome = provision_fault_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        loads,
        faults,
        sla_ms={MODEL: model.sla_ms},
        target_availability=TARGET,
        baseline_r=0.05,  # the fault-blind default
        policy="least",
        retries=2,
        seed=SEED,
        warmup_s=DURATION_S * 0.05,
        r_tol=0.05,
    )
    print(outcome.format())
    print()
    if outcome.converged:
        print(
            "the loop paid "
            f"{outcome.standby_power_w:.0f} W of standby capacity to turn "
            f"{outcome.baseline_result.availability * 100:.1f}% uptime under "
            "rack outages into "
            f"{outcome.result.per_model[MODEL].completed} queries served at "
            f">= {TARGET * 100:.1f}% service availability"
        )


if __name__ == "__main__":
    main()
