"""Carbon-aware operation: price the fleet, time-shift the batch work.

The `fault_aware_provisioning` example buys availability with standby
power; this walkthrough spends the other currency -- gCO2:

1. profile a small T2 fleet and attach a diurnal grid carbon-intensity
   trace (one compressed "day" over the replay window);
2. replay the fleet with carbon accounting on and read the realtime
   emissions off the report -- the SLA traffic is priced but never
   moved;
3. submit four deferrable batch jobs with real slack and place them
   with each scheduling policy, watching the emission ladder
   `no-wait >= lowest-carbon-slot >= carbon-waiting >= suspend-resume`;
4. run ``provision_carbon_aware``: the smallest fleet meeting the
   availability target, plus the least-gCO2 feasible deferrable plan
   swept over policies and power caps.

Run:  python examples/carbon_aware_fleet.py
"""

from __future__ import annotations

from repro.carbon import CarbonTrace, DeferrableJob, DEFERRABLE_POLICIES, run_deferrable
from repro.carbon.accounting import realtime_power_profile
from repro.cluster import HerculesClusterScheduler
from repro.fleet import (
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    provision_carbon_aware,
)
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"
DURATION_S = 3.0
SEED = 7
TARGET = 0.999
LOAD_UNITS = 4.0


def jobs_for(horizon_s: float) -> tuple[DeferrableJob, ...]:
    """Four batch jobs submitted through the day, each with 4x slack."""
    duration = horizon_s / 12.0
    return tuple(
        DeferrableJob(
            name=f"batch-{i}",
            submit_s=i * horizon_s / 6.0,
            duration_s=duration,
            power_w=900.0,
            deadline_s=i * horizon_s / 6.0 + duration * 5.0,
        )
        for i in range(4)
    )


def main() -> None:
    model = build_model(MODEL)
    models = {MODEL: model}
    workloads = {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [model])
    tup = table.get("T2", MODEL)
    loads = {MODEL: LOAD_UNITS * tup.qps}
    trace = build_fleet_trace(
        workloads, {MODEL: [(loads[MODEL], DURATION_S)]}, seed=SEED
    )
    scheduler = HerculesClusterScheduler(table, {"T2": 20})

    # One compressed "day": intensity swings 200..500 gCO2/kWh with the
    # trough at midday.  Same grammar as `fleet --carbon
    # diurnal:base=350,swing=150,period=3,steps=24`.
    carbon = CarbonTrace.diurnal(
        base=350.0, swing=150.0, period_s=DURATION_S, steps=24
    )
    print(
        f"{len(trace)} queries over {DURATION_S:.0f}s; grid mean "
        f"{carbon.mean(0.0, DURATION_S):.0f} gCO2/kWh\n"
    )

    # -- 2. price the realtime fleet -----------------------------------
    allocation = scheduler.allocate(loads, over_provision=0.05)
    servers = build_fleet(allocation, table, models, workloads)
    sim = FleetSimulator(
        servers,
        policy="least",
        sla_ms={MODEL: model.sla_ms},
        seed=SEED,
        carbon=carbon,
    )
    result = sim.run(trace, warmup_s=DURATION_S * 0.05)
    stats = result.carbon
    print(
        f"realtime serving: {stats.energy_kwh * 1e3:.3f} Wh -> "
        f"{stats.realtime_g:.3f} gCO2 at grid mean "
        f"{stats.mean_intensity:.0f} gCO2/kWh"
    )

    # -- 3. the policy ladder on the same timeline ---------------------
    profile = realtime_power_profile(sim.servers)
    horizon = result.duration_s + DURATION_S * 0.05
    jobs = jobs_for(DURATION_S)
    print(f"\nplacing {len(jobs)} deferrable jobs (900 W, 4x slack):")
    for policy in DEFERRABLE_POLICIES:
        report = run_deferrable(
            jobs,
            carbon,
            policy=policy,
            horizon_s=horizon,
            realtime_profile=profile,
        )
        print(
            f"  {policy:>18}: {report.completed}/{report.submitted} done, "
            f"{report.suspension_events} suspensions, "
            f"{report.total_gco2:.4f} gCO2"
        )

    # -- 4. the whole loop in one call ---------------------------------
    print()
    outcome = provision_carbon_aware(
        scheduler,
        table,
        models,
        workloads,
        trace,
        loads,
        carbon,
        sla_ms={MODEL: model.sla_ms},
        jobs=jobs,
        power_caps=(None, 9000.0),
        target_availability=TARGET,
        policy="least",
        seed=SEED,
        warmup_s=DURATION_S * 0.05,
        r_tol=0.05,
    )
    print(outcome.format())
    if outcome.converged and outcome.chosen_plan is not None:
        print(
            f"\ntime-shifting the batch work saved "
            f"{outcome.deferral_savings_g:.4f} gCO2 "
            f"({outcome.deferral_savings_g / max(outcome.no_wait_g, 1e-12) * 100:.0f}% "
            f"of the no-wait batch emissions) at the same availability"
        )


if __name__ == "__main__":
    main()
