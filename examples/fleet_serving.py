"""Request-level fleet serving: routing, autoscaling, measured SLAs.

The `cluster_serving` example evaluates provisioning with closed-form
capacity margins; this walkthrough replays the same kind of diurnal day
*query by query*:

1. profile a small heterogeneous fleet offline (efficiency tuples);
2. provision it with the Hercules LP at the diurnal peak;
3. replay a compressed day through two routing policies and compare
   measured p99 / SLA-violation rates;
4. re-run provisioned at the trough with the reactive autoscaler
   activating standby servers as the peak builds.

Run:  python examples/fleet_serving.py
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.cluster import HerculesClusterScheduler, allocation_drawn_power_w, synchronous_traces
from repro.fleet import (
    FleetSimulator,
    ReactiveAutoscaler,
    build_fleet,
    build_fleet_trace,
    diurnal_segments,
)
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload

FLEET = {"T2": 12, "T3": 5, "T7": 3}
MODELS = ("DLRM-RMC1", "DLRM-RMC2")
DURATION_S = 6.0  # one diurnal day, time-compressed
SEED = 11


def main() -> None:
    models = {name: build_model(name) for name in MODELS}
    workloads = {
        name: QueryWorkload.for_model(m.config.mean_query_size)
        for name, m in models.items()
    }
    sla = {name: m.sla_ms for name, m in models.items()}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile(
        [SERVER_TYPES[s] for s in FLEET], list(models.values())
    )

    # Diurnal peaks at ~60% of what the fleet can serve per model.
    peaks = {
        name: 0.6
        * sum(count * table.qps(srv, name) for srv, count in FLEET.items())
        / len(MODELS)
        for name in MODELS
    }
    traces = synchronous_traces(peaks)
    scheduler = HerculesClusterScheduler(table, FLEET)
    peak_alloc = scheduler.allocate(
        {m: t.peak_qps for m, t in traces.items()}, over_provision=0.05
    )
    print(
        f"LP provisioned {peak_alloc.total_servers} servers for peaks "
        + ", ".join(f"{m}={q:.0f} qps" for m, q in peaks.items())
    )

    segments = {
        name: diurnal_segments(trace, DURATION_S) for name, trace in traces.items()
    }
    trace = build_fleet_trace(workloads, segments, seed=SEED)
    print(f"Compressed diurnal trace: {len(trace)} queries over {DURATION_S:.0f}s\n")

    # -- static fleet, two routing policies -----------------------------
    rows = []
    for policy in ("rr", "p2c"):
        servers = build_fleet(peak_alloc, table, models, workloads)
        sim = FleetSimulator(servers, policy=policy, sla_ms=sla, seed=SEED)
        result = sim.run(trace, warmup_s=DURATION_S * 0.05)
        for name, stats in sorted(result.per_model.items()):
            rows.append(
                [
                    policy,
                    name,
                    round(stats.p50_ms, 1),
                    round(stats.p99_ms, 1),
                    f"{stats.violation_rate * 100:.2f}%",
                    round(result.avg_power_w / 1e3, 2),
                ]
            )
    print_table(
        ["policy", "model", "p50 ms", "p99 ms", "SLA viol", "fleet kW"],
        rows,
        title="Static peak-provisioned fleet: routing policy comparison",
    )

    # -- trough-provisioned fleet with reactive autoscaling -------------
    trough_alloc = scheduler.allocate(
        {m: t.peak_qps * t.trough_ratio for m, t in traces.items()},
        over_provision=0.05,
    )
    standby = peak_alloc.minus(trough_alloc)
    window = DURATION_S / 48.0
    autoscaler = ReactiveAutoscaler(sla, window_s=window, cooldown_s=2 * window)
    servers = build_fleet(trough_alloc, table, models, workloads, standby=standby)
    sim = FleetSimulator(servers, policy="p2c", sla_ms=sla, autoscaler=autoscaler, seed=SEED)
    result = sim.run(trace, warmup_s=DURATION_S * 0.05)
    print()
    print(
        result.format(
            title=(
                f"Autoscaled fleet: {trough_alloc.total_servers} at trough "
                f"+ {standby.total_servers} standby"
            )
        )
    )
    if result.scale_events:
        print("\nscaling timeline:")
        for event in result.scale_events:
            print(
                f"  t={event.time_s:5.2f}s  {event.action:8s} "
                f"{event.server.server_type.name} for {event.model} ({event.reason})"
            )

    drawn = allocation_drawn_power_w(
        peak_alloc,
        table,
        {m: t.average_load() for m, t in traces.items()},
        models,
        workloads,
    )
    print(
        f"\nanalytic cross-check: peak provisioning {peak_alloc.provisioned_power_w(table) / 1e3:.2f} kW, "
        f"drawn at average load {drawn / 1e3:.2f} kW"
    )


if __name__ == "__main__":
    main()
