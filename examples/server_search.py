"""Explore the task-scheduling space the way Figs. 11-12 visualize it.

Dumps the latency-bounded-throughput surface of the Psp(M+D) space for
a model/server pair, overlays the path Algorithm 1's gradient walk
takes through it, and prints the per-placement optima the full
Hercules task scheduler compares.

Run:  python examples/server_search.py [MODEL] [SERVER]
      e.g. python examples/server_search.py DLRM-RMC1 T3
"""

from __future__ import annotations

import sys

from repro.analysis import print_table
from repro.hardware import SERVER_TYPES
from repro.models import build_model, partition_model
from repro.plans import ExecutionPlan, Placement
from repro.scheduling import GradientSearch
from repro.sim import ServerEvaluator


def surface(evaluator, model, threads_axis, batch_axis):
    """Latency-bounded QPS over (threads, batch) with o = 1."""
    partitioned = partition_model(model)
    rows = []
    for threads in threads_axis:
        row = [f"m={threads}"]
        for batch in batch_axis:
            plan = ExecutionPlan(
                Placement.CPU_MODEL_BASED,
                threads=threads,
                cores_per_thread=1,
                batch_size=batch,
            )
            perf = evaluator.latency_bounded(
                partitioned, None or _workload(model), plan, sla_ms=model.sla_ms
            )
            row.append(round(perf.qps) if perf.feasible else 0)
        rows.append(row)
    return rows


def _workload(model):
    from repro.sim import QueryWorkload

    return QueryWorkload.for_model(model.config.mean_query_size)


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "DLRM-RMC1"
    server_name = sys.argv[2] if len(sys.argv) > 2 else "T2"
    model = build_model(model_name)
    server = SERVER_TYPES[server_name]
    evaluator = ServerEvaluator(server)

    print(f"{model.name} on {server.name} ({server.label}), SLA {model.sla_ms:.0f} ms\n")

    threads_axis = (1, 2, 4, 8, 12, 16, 20)
    batch_axis = (16, 64, 256, 1024)
    rows = surface(evaluator, model, threads_axis, batch_axis)
    print_table(
        ["threads \\ batch"] + [str(b) for b in batch_axis],
        rows,
        title="Psp(M+D) latency-bounded QPS surface (o=1) -- cf. Fig. 11",
    )

    space = GradientSearch(evaluator, model)
    results = {"cpu_model_based": space.search_cpu_model_based()}
    results["cpu_sd_pipeline"] = space.search_cpu_sd_pipeline()
    if server.has_gpu:
        results["gpu_model_based"] = space.search_gpu_model_based()
        results["gpu_sd"] = space.search_gpu_sd()

    print()
    print_table(
        ["placement", "best plan", "QPS", "QPS/W"],
        [
            [
                name,
                r.plan.describe() if r.plan else "infeasible",
                round(r.perf.qps) if r.feasible else 0,
                round(r.perf.qps_per_watt, 1) if r.feasible else 0.0,
            ]
            for name, r in results.items()
        ],
        title="Per-placement optima (cf. Fig. 12)",
    )
    print(f"\nTotal configurations evaluated: {space.evaluations}")
    walk = space.visited[:12]
    print("\nFirst gradient-walk steps (plan -> QPS):")
    for plan, qps in walk:
        print(f"  {plan.describe():42s} {qps:>10.0f}")


if __name__ == "__main__":
    main()
