"""Fault injection in the fleet: crashes, stragglers, retries, hedging.

The `fleet_serving` example replays a healthy fleet; this walkthrough
breaks one on purpose:

1. profile and provision a small heterogeneous fleet;
2. replay a steady trace fault-free (the baseline tail);
3. crash two replicas mid-run -- without retries queries die with
   their replica, with a retry budget they are re-enqueued at the
   router and only capacity (availability) is lost;
4. slow one replica 4x for a third of the run and show how hedged
   dispatch races a duplicate attempt to recover the tail;
5. print the per-phase p99 breakdown so the fault windows are visible.

Run:  python examples/fleet_faults.py
"""

from __future__ import annotations

from repro.cluster.state import Allocation
from repro.fleet import (
    FaultSchedule,
    FleetSimulator,
    build_fleet,
    build_fleet_trace,
    crash,
    slowdown,
)
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload

MODEL = "DLRM-RMC1"
DURATION_S = 5.0
# Offered load as a fraction of fleet capacity.  Low enough that
# round-robin's equal split keeps even the smallest replica stable
# fault-free, and that hedged duplicates have headroom to land on.
RHO = 0.5
SEED = 17


def main() -> None:
    model = build_model(MODEL)
    models = {MODEL: model}
    workloads = {MODEL: QueryWorkload.for_model(model.config.mean_query_size)}
    sla = {MODEL: model.sla_ms}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile(
        [SERVER_TYPES[s] for s in ("T2", "T3", "T7")], [model]
    )
    allocation = Allocation()
    allocation.add("T2", MODEL, 3)
    allocation.add("T3", MODEL, 2)
    allocation.add("T7", MODEL, 1)

    capacity = sum(
        count * table.qps(srv, m)
        for (srv, m), count in allocation.counts.items()
    )
    trace = build_fleet_trace(
        workloads, {MODEL: [(RHO * capacity, DURATION_S)]}, seed=SEED
    )
    print(f"{len(trace)} queries over {DURATION_S:.0f}s on 6 replicas\n")

    def replay(title, policy="least", **kwargs):
        servers = build_fleet(allocation, table, models, workloads)
        sim = FleetSimulator(
            servers, policy=policy, sla_ms=sla, seed=SEED, **kwargs
        )
        result = sim.run(trace, warmup_s=DURATION_S * 0.1)
        print(result.format(title=title))
        print()
        return result

    baseline = replay("1. fault-free baseline")

    crashes = FaultSchedule(
        [crash(DURATION_S * 0.4, 0), crash(DURATION_S * 0.5, 1, recover_after=1.0)]
    )
    no_retry = replay("2a. two crashes, no retries", faults=crashes)
    with_retry = replay("2b. same crashes, retry budget 2", faults=crashes, retries=2)
    print(
        f"   crashes kill {no_retry.total_failed} queries without retries; "
        f"with a budget, {with_retry.total_retried} are re-enqueued and only "
        f"{with_retry.total_failed} fail "
        f"(availability {with_retry.availability * 100:.1f}%)\n"
    )

    # Backlog-aware policies route around a straggler on their own, so
    # the hedging comparison uses oblivious round-robin: it keeps
    # feeding the slow replica, and only the duplicate attempt saves
    # the tail.  Replica 0 is a T2 (the smallest): the rest of the
    # fleet keeps the headroom the hedged duplicates land on.
    straggler = FaultSchedule(
        [slowdown(DURATION_S * 0.3, 0, 4.0, duration=DURATION_S * 0.3)]
    )
    slow_run = replay(
        "3a. one replica straggles 4x (rr routing)", policy="rr", faults=straggler
    )
    hedge_run = replay(
        "3b. same straggler, hedged dispatch",
        policy="rr",
        faults=straggler,
        hedge_ms=12.0,
    )
    print(
        f"   straggler p99 {slow_run.per_model[MODEL].p99_ms:.1f} ms -> "
        f"{hedge_run.per_model[MODEL].p99_ms:.1f} ms with hedging "
        f"({hedge_run.total_hedged} hedged attempts; fault-free baseline "
        f"{baseline.per_model[MODEL].p99_ms:.1f} ms)"
    )


if __name__ == "__main__":
    main()
