"""Bursty traffic end to end: synthesize, record, replay, autoscale.

The `fleet_serving` example replays a smooth piecewise-Poisson day;
this walkthrough shows why that flatters the fleet -- and what the new
traffic layer does about it:

1. synthesize a diurnal ramp carrying MMPP burst storms
   (`repro.traces.DiurnalProcess` + `MMPPProcess`, superposed);
2. save it to a CSV trace file and replay it through the fleet from
   disk (`save_trace` / `RecordedTrace`) -- the same path a measured
   production capture would take;
3. replay a plain Poisson stream of the *same mean rate* and show how
   far the bursty tail (p99, SLA violations) shifts from it;
4. replay the bursty day with reactive vs predictive autoscaling from
   a trough-provisioned fleet, and print the SLA/power delta --
   provisioning ahead of the ramp vs reacting to its violations.

Run:  python examples/fleet_bursty_trace.py
"""

from __future__ import annotations

import os
import tempfile

from repro.cluster.state import Allocation
from repro.fleet import (
    FleetSimulator,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    build_fleet,
)
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler
from repro.sim import QueryWorkload
from repro.traces import (
    DiurnalProcess,
    FleetArrivals,
    MMPPProcess,
    PoissonProcess,
    RecordedTrace,
    SuperposedProcess,
    save_trace,
)

MODEL = "DLRM-RMC1"
DURATION_S = 12.0
SEED = 3


def main() -> None:
    model = build_model(MODEL)
    models = {MODEL: model}
    workload = QueryWorkload.for_model(model.config.mean_query_size)
    workloads = {MODEL: workload}
    sla = {MODEL: model.sla_ms}

    print("Offline profiling the fleet ...")
    table = OfflineProfiler().profile([SERVER_TYPES["T2"]], [model])
    qps1 = table.qps("T2", MODEL)

    # -- 1. synthesize: diurnal ramp + burst storms --------------------
    ramp = DiurnalProcess(
        workload,
        peak_qps=0.55 * 8 * qps1,
        duration_s=DURATION_S,
        steps=48,
        trough_ratio=0.15,
        peak_position=0.5,
        noise=0.08,
    )
    storms = MMPPProcess(
        workload,
        rates=[0.0, 2.5 * qps1],  # quiet vs storm
        dwell_s=[2.0, 0.3],
        duration_s=DURATION_S,
    )
    bursty = SuperposedProcess([ramp, storms])
    print(
        f"bursty day: mean {bursty.mean_qps:.0f} QPS "
        f"(diurnal peak {ramp.peak_qps:.0f} + storms at {storms.rates[1]:.0f})"
    )

    # -- 2. record to disk, replay from disk ---------------------------
    path = os.path.join(tempfile.gettempdir(), "fleet_bursty_trace.csv")
    count = save_trace(path, FleetArrivals({MODEL: bursty}, seed=SEED))
    recorded = RecordedTrace(path)
    print(f"recorded {count} queries to {path} (end_s={recorded.end_s:.2f})\n")

    # -- 3. bursty vs Poisson at the same mean rate --------------------
    allocation = Allocation()
    allocation.add("T2", MODEL, 4)

    def replay(source, title, autoscaler=None, base=allocation, standby=None):
        servers = build_fleet(
            base, table, models, workloads, standby=standby
        )
        sim = FleetSimulator(
            servers, policy="least", sla_ms=sla, autoscaler=autoscaler, seed=SEED
        )
        result = sim.run(source, warmup_s=DURATION_S * 0.05)
        stats = result.per_model[MODEL]
        print(
            f"{title:38s} p99 {stats.p99_ms:7.1f} ms | viol "
            f"{stats.violation_rate * 100:5.2f}% | power {result.avg_power_w:6.1f} W"
        )
        return result

    poisson = FleetArrivals(
        {MODEL: PoissonProcess(workload, bursty.mean_qps, DURATION_S)}, seed=SEED
    )
    print("same fleet, same mean offered load:")
    smooth = replay(poisson, "  poisson (steady-state benchmark)")
    shifted = replay(recorded, "  recorded bursty day")
    print(
        f"  -> bursts shift p99 by "
        f"{shifted.per_model[MODEL].p99_ms - smooth.per_model[MODEL].p99_ms:+.1f} ms "
        "at identical mean rate\n"
    )

    # -- 4. reactive vs predictive autoscaling on the ramp -------------
    base = Allocation()
    base.add("T2", MODEL, 2)
    standby = Allocation()
    standby.add("T2", MODEL, 6)
    window = 0.25
    print("trough-provisioned fleet (2 active + 6 standby):")
    reactive = replay(
        recorded,
        "  reactive autoscaler",
        ReactiveAutoscaler(sla, window_s=window, cooldown_s=2 * window),
        base=base,
        standby=standby,
    )
    predictive = replay(
        recorded,
        "  predictive autoscaler",
        PredictiveAutoscaler(
            sla,
            window_s=window,
            lead_windows=2,
            target_utilization=0.9,
            drain_utilization=0.7,
        ),
        base=base,
        standby=standby,
    )
    r = reactive.per_model[MODEL]
    p = predictive.per_model[MODEL]
    print(
        f"  -> predictive cuts SLA violations "
        f"{r.violation_rate * 100:.2f}% -> {p.violation_rate * 100:.2f}% at "
        f"{predictive.avg_power_w - reactive.avg_power_w:+.1f} W fleet power "
        f"({len(predictive.scale_events)} vs {len(reactive.scale_events)} scale events)"
    )


if __name__ == "__main__":
    main()
