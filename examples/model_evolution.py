"""Model evolution: what newer, heavier models cost the fleet (Fig. 16).

Linearly shifts traffic from the DLRM family to DIN/DIEN/MT-WnD over
model-update cycles and provisions (a) a CPU-only cluster and (b) the
accelerated fleet for each cycle, showing how acceleration absorbs the
complexity growth.

Run:  python examples/model_evolution.py
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.cluster import (
    GreedyScheduler,
    HerculesClusterScheduler,
    linear_evolution,
    run_evolution,
)
from repro.hardware import SERVER_TYPES
from repro.models import MODEL_NAMES, build_model
from repro.scheduling import OfflineProfiler

TOTAL_PEAK_QPS = 4_000.0
CYCLES = 5
CPU_FLEET = {"T1": 100, "T2": 100}
ACCEL_FLEET = {
    "T1": 100, "T2": 70, "T3": 15, "T4": 10, "T5": 5,
    "T6": 10, "T7": 5, "T8": 6, "T9": 4, "T10": 2,
}


def main() -> None:
    models = [build_model(name) for name in MODEL_NAMES]
    profiler = OfflineProfiler()

    print("Profiling the CPU-only cluster (T1, T2) ...")
    cpu_table = profiler.profile([SERVER_TYPES[s] for s in CPU_FLEET], models)
    print("Profiling the accelerated fleet (T1-T10) ...")
    accel_table = profiler.profile(
        [SERVER_TYPES[s] for s in ACCEL_FLEET], models
    )

    cpu = run_evolution(
        GreedyScheduler(cpu_table, dict(CPU_FLEET)),
        total_peak_qps=TOTAL_PEAK_QPS,
        cycles=CYCLES,
    )
    accel = run_evolution(
        HerculesClusterScheduler(accel_table, dict(ACCEL_FLEET)),
        total_peak_qps=TOTAL_PEAK_QPS,
        cycles=CYCLES,
    )

    rows = []
    for i, mix in enumerate(cpu.mixes):
        new_share = sum(
            s for name, s in mix.shares.items() if name in ("DIN", "DIEN", "MT-WnD")
        )
        rows.append(
            [
                i,
                f"{new_share * 100:.0f}%",
                round(cpu.days[i].peak_power_w / 1e3, 2),
                cpu.days[i].peak_servers,
                round(accel.days[i].peak_power_w / 1e3, 2),
                accel.days[i].peak_servers,
            ]
        )
    print()
    print_table(
        [
            "cycle",
            "new-model traffic",
            "CPU-only peak kW",
            "CPU-only peak servers",
            "accelerated peak kW",
            "accelerated peak servers",
        ],
        rows,
        title="Fig. 16 -- cost of model evolution, CPU-only vs accelerated",
    )

    cpu_growth = cpu.peak_power_series()[-1] / cpu.peak_power_series()[0]
    accel_end = accel.peak_power_series()[-1]
    cpu_end = cpu.peak_power_series()[-1]
    print(
        f"\nCPU-only provisioned power grows {cpu_growth:.1f}x across the "
        f"evolution; the accelerated fleet ends at "
        f"{accel_end / cpu_end * 100:.0f}% of the CPU-only cost."
    )


if __name__ == "__main__":
    main()
