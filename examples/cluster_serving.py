"""Online cluster serving: a full day on the heterogeneous fleet.

Profiles a three-type fleet offline (the Fig. 8 setup), then replays a
synchronous diurnal day of DLRM-RMC1 + DLRM-RMC2 traffic through the
four cluster scheduling policies, printing the provisioned-power series
and the peak/average summary the paper reports.

Run:  python examples/cluster_serving.py
"""

from __future__ import annotations

from repro.analysis import print_series, print_table
from repro.cluster import (
    ClusterManager,
    GreedyScheduler,
    HerculesClusterScheduler,
    NHScheduler,
    PriorityAwareScheduler,
    estimate_over_provision,
    synchronous_traces,
)
from repro.hardware import SERVER_TYPES
from repro.models import build_model
from repro.scheduling import OfflineProfiler

FLEET = {"T2": 70, "T3": 15, "T7": 5}
PEAKS = {"DLRM-RMC1": 20_000.0, "DLRM-RMC2": 5_500.0}


def main() -> None:
    print("Offline profiling T2/T3/T7 for DLRM-RMC1 and DLRM-RMC2 ...")
    profiler = OfflineProfiler()
    table = profiler.profile(
        [SERVER_TYPES[s] for s in FLEET],
        [build_model("DLRM-RMC1"), build_model("DLRM-RMC2")],
    )
    print_table(
        ["server", "model", "QPS", "power W", "QPS/W", "plan"],
        [
            [
                tup.server_name,
                tup.model_name,
                round(tup.qps),
                round(tup.power_w),
                round(tup.qps_per_watt, 2),
                tup.plan.describe() if tup.plan else "-",
            ]
            for tup in table.entries.values()
        ],
        title="Workload classification (efficiency tuples, Fig. 9b)",
    )

    traces = synchronous_traces(PEAKS)
    rate = estimate_over_provision(traces, interval_minutes=30.0)
    print(f"\nEstimated over-provision rate R = {rate * 100:.1f}%\n")

    summary_rows = []
    hercules_day = None
    for policy in (
        NHScheduler,
        GreedyScheduler,
        PriorityAwareScheduler,
        HerculesClusterScheduler,
    ):
        manager = ClusterManager(policy(table, dict(FLEET)), over_provision=rate)
        day = manager.run_day(traces)
        if policy is HerculesClusterScheduler:
            hercules_day = day
        summary_rows.append(
            [
                policy.__name__,
                round(day.peak_power_w / 1e3, 2),
                round(day.average_power_w / 1e3, 2),
                day.peak_servers,
                day.any_shortfall,
            ]
        )
    print_table(
        ["scheduler", "peak kW", "avg kW", "peak servers", "shortfall"],
        summary_rows,
        title="One-day provisioning summary (cf. Fig. 8c / Fig. 17)",
    )

    print()
    print_series(
        hercules_day.power_series(),
        x_label="hour",
        y_label="provisioned kW",
        title="Hercules provisioned power over the day",
        precision=0,
    )


if __name__ == "__main__":
    main()
