"""Setuptools shim: enables legacy editable installs where the wheel
package is unavailable (pyproject.toml remains the source of truth)."""

from setuptools import setup

setup()
